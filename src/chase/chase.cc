#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <thread>

#include "chase/fired_set.h"
#include "chase/null_store.h"
#include "chase/trigger.h"
#include "graph/reliance.h"
#include "util/hash.h"
#include "util/parse.h"
#include "util/thread_pool.h"

namespace nuchase {
namespace chase {

using core::Atom;
using core::AtomIndex;
using core::Instance;
using core::Term;

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

const char* ChaseOutcomeName(ChaseOutcome outcome) {
  switch (outcome) {
    case ChaseOutcome::kTerminated:
      return "terminated";
    case ChaseOutcome::kAtomLimit:
      return "atom-limit";
    case ChaseOutcome::kDepthLimit:
      return "depth-limit";
    case ChaseOutcome::kRoundLimit:
      return "round-limit";
    case ChaseOutcome::kCancelled:
      return "cancelled";
    case ChaseOutcome::kResourceExhausted:
      return "resource-exhausted";
  }
  return "?";
}

std::uint32_t ResolveNumThreads(const ChaseOptions& options) {
  std::uint32_t n = options.num_threads;
  if (n == kNumThreadsDefault) {
    // Only the unset default is overridable from the environment (the
    // hook CI uses to push every existing test through the parallel
    // engine without touching call sites); every explicit setting —
    // including an explicit 1 = sequential, which benches and
    // differential tests rely on for their reference cells — wins.
    n = 1;
    const char* env = std::getenv("NUCHASE_THREADS");
    if (env != nullptr) {
      // util::ParseCount is the CLI's strict flag parser: digit-first
      // (no whitespace/sign skipping) with the errno reset strtoul
      // callers forget — " 4" and a stale ERANGE are both rejected
      // here exactly as "--threads= 4" would be.
      unsigned long long v = 0;
      if (util::ParseCount(env, 256, &v) && v > 0) {
        n = static_cast<std::uint32_t>(v);
      } else {
        // A malformed value silently running sequential would hollow
        // out the CI shards that exist to force the parallel engine —
        // warn loudly (once per process) on stderr; stdout, which the
        // golden tests compare, stays clean.
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
          std::fprintf(stderr,
                       "nuchase: ignoring invalid NUCHASE_THREADS='%s' "
                       "(want an integer in [1, 256]); running "
                       "sequential\n", env);
        }
      }
    }
  }
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  return n;
}

JoinPlanSet PlanJoins(const tgd::TgdSet& tgds) {
  // Precondition: |Σ| ≤ tgd::kMaxRules (api::Program::Analyze and
  // RunChase both reject over-cap sets before planning), making the
  // RuleIndex cast exact.
  const tgd::RuleIndex num_rules =
      static_cast<tgd::RuleIndex>(tgds.size());
  JoinPlanSet plans;
  plans.reserve(num_rules);
  for (tgd::RuleIndex ti = 0; ti < num_rules; ++ti) {
    const std::vector<Atom>& body = tgds.tgd(ti).body();
    JoinPlan plan;
    plan.reordered_bodies.resize(body.size());
    plan.old_flags.resize(body.size());
    for (std::size_t p = 0; p < body.size(); ++p) {
      std::vector<std::size_t> order = PlanJoinOrder(body, p);
      std::vector<Atom>& reordered = plan.reordered_bodies[p];
      std::vector<bool>& old_only = plan.old_flags[p];
      reordered.reserve(body.size());
      old_only.reserve(body.size());
      for (std::size_t i : order) {
        reordered.push_back(body[i]);
        old_only.push_back(i < p);
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

namespace {

/// A collected, not-yet-applied trigger: the TGD index, the frontier
/// images (in sorted-frontier order), the full body-variable images (in
/// sorted-body-variable order; only kept by the oblivious variant, which
/// names nulls by them), and the instance index of the guard image
/// (kNoGuard when the TGD is not guarded).
struct PendingTrigger {
  tgd::RuleIndex tgd_index;
  std::vector<Term> frontier_images;
  std::vector<Term> body_images;
  AtomIndex guard_image;

  static constexpr AtomIndex kNoGuard = 0xffffffffu;
};

/// Canonical within-round order: rule-major (Σ-order), then by frontier
/// images, then body images. Both engines (delta-seeded and full-scan)
/// enumerate the same trigger set per round but in different orders;
/// sorting before the apply phase makes the firing order — and hence the
/// restricted-chase result — independent of the engine, so the ablation
/// cells stay byte-identical. The leading tgd_index key is what lets one
/// sort serve the cross-rule collect too: a whole group's worker buffers
/// merge into per-rule runs in Σ-order, each run internally in the exact
/// order the rule's solo collect would have produced.
bool PendingBefore(const PendingTrigger& a, const PendingTrigger& b) {
  if (a.tgd_index != b.tgd_index) return a.tgd_index < b.tgd_index;
  if (a.frontier_images != b.frontier_images) {
    return a.frontier_images < b.frontier_images;
  }
  return a.body_images < b.body_images;
}

/// Two candidates with equal (rule, frontier, body) images are the same
/// trigger (their dedup keys coincide), so PendingBefore is a total
/// order on the deduplicated set and a weak order with
/// duplicate-adjacency on the raw parallel candidate buffers — exactly
/// what the merge needs: sort, then drop consecutive equals.
bool SameTrigger(const PendingTrigger& a, const PendingTrigger& b) {
  return a.tgd_index == b.tgd_index &&
         a.frontier_images == b.frontier_images &&
         a.body_images == b.body_images;
}

/// Builds the PendingTrigger for (σ_ti, h) and its dedup key — the one
/// definition of trigger identity that the sequential engine, the
/// parallel workers and the merge all share. Key: (σ, h|fr(σ)) for the
/// semi-oblivious and restricted variants (result and
/// head-satisfaction depend only on the frontier restriction), (σ, h)
/// for the oblivious one.
void FillPendingTrigger(const tgd::Tgd& rule, std::uint32_t ti,
                        bool oblivious, const Substitution& h,
                        PendingTrigger* trig,
                        std::vector<std::uint32_t>* key) {
  trig->tgd_index = ti;
  trig->guard_image = PendingTrigger::kNoGuard;
  const std::vector<Term>& frontier = rule.frontier();
  trig->frontier_images.reserve(frontier.size());
  for (Term v : frontier) trig->frontier_images.push_back(h.at(v));
  key->clear();
  key->push_back(ti);
  if (oblivious) {
    const std::vector<Term>& body_vars = rule.body_variables();
    trig->body_images.reserve(body_vars.size());
    for (Term v : body_vars) {
      Term image = h.at(v);
      key->push_back(image.bits());
      trig->body_images.push_back(image);
    }
  } else {
    for (Term image : trig->frontier_images) {
      key->push_back(image.bits());
    }
  }
}

/// Rebuilds an already-built trigger's dedup key (the merge path, where
/// h is no longer available). Consistent with FillPendingTrigger by
/// construction: it reads the images that function stored.
std::vector<std::uint32_t> FiredKeyOf(const PendingTrigger& trig,
                                      bool oblivious) {
  const std::vector<Term>& images =
      oblivious ? trig.body_images : trig.frontier_images;
  std::vector<std::uint32_t> key;
  key.reserve(1 + images.size());
  key.push_back(trig.tgd_index);
  for (Term image : images) key.push_back(image.bits());
  return key;
}

/// One delta-seeded enumeration task of the parallel collect phase:
/// seed body position `seed_pos` of rule `rule` with instance atom
/// `atom` (an atom of the previous round's delta). Tasks are built
/// rule-major over a whole collect group, so one pooled region fans the
/// group's every (rule, seed) pair across the workers.
struct SeedTask {
  tgd::RuleIndex rule;
  std::size_t seed_pos;
  AtomIndex atom;
};

/// Thread-local state of one collect worker, reused across rounds. The
/// buffers are written only by the owning worker inside a pool region
/// and read only by the merge after the barrier.
struct CollectWorker {
  std::vector<PendingTrigger> candidates;
  std::uint64_t join_probes = 0;
  std::uint32_t deadline_poll = 0;
  bool interrupted = false;
};

/// Thread-local state of one apply-phase worker (the restricted
/// variant's read-only head-satisfaction pre-checks). Same discipline as
/// CollectWorker: written only inside the region, reduced after it.
struct ApplyWorker {
  std::uint64_t join_probes = 0;
  std::uint32_t deadline_poll = 0;
  bool interrupted = false;
};

/// Where one term of a head tuple comes from: a frontier image (read
/// from PendingTrigger::frontier_images) or a bound existential null
/// (read from the trigger's run of the pass-1 null buffer). TGD atoms
/// are constant-free (tgd.h), so these two sources are exhaustive.
struct HeadSlot {
  bool existential;
  std::uint32_t index;
};

/// The precompiled candidate-build recipe for one rule's head: filling a
/// trigger's head tuples is a straight copy loop driven by `slots` (all
/// head atoms concatenated), with `tuples[j]` giving each atom's
/// predicate, arity and term offset *within the trigger's slice*. The
/// parallel pass-2 workers share one immutable plan, so building
/// candidate t touches only t's slice of the shared buffers — no
/// synchronization, and bytes independent of which worker fills what.
struct HeadPlan {
  std::vector<HeadSlot> slots;
  std::vector<core::BatchTuple> tuples;
  std::size_t terms_per_trigger = 0;
};

HeadPlan PlanHead(const tgd::Tgd& rule) {
  HeadPlan plan;
  auto index_of = [](const std::vector<Term>& vars, Term v) {
    return static_cast<std::uint32_t>(
        std::find(vars.begin(), vars.end(), v) - vars.begin());
  };
  for (const Atom& head_atom : rule.head()) {
    core::BatchTuple tuple;
    tuple.pred = head_atom.predicate;
    tuple.begin = plan.terms_per_trigger;
    tuple.arity = head_atom.arity();
    plan.tuples.push_back(tuple);
    for (Term v : head_atom.args) {
      HeadSlot slot;
      slot.existential =
          index_of(rule.frontier(), v) >= rule.frontier().size();
      slot.index = slot.existential ? index_of(rule.existential(), v)
                                    : index_of(rule.frontier(), v);
      plan.slots.push_back(slot);
    }
    plan.terms_per_trigger += head_atom.arity();
  }
  return plan;
}

}  // namespace

ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db,
                     const ChaseOptions& options) {
  ChaseResult result;
  if (options.extent_log2 != 0) {
    // Re-seat the default-geometry instance before anything observes
    // it. Extent geometry is observationally invisible (same bytes,
    // same ToSortedString, same arena_bytes — padding is excluded per
    // segment), so this knob is tuning-only and golden-safe. Tuples
    // never straddle an extent boundary, so the requested geometry is
    // clamped up — equally invisibly — until one extent holds the
    // widest tuple the run can store (schema atoms cover every head
    // the chase can fire; database facts cover the initial load).
    std::uint32_t widest = 1;
    for (const Atom& fact : db.facts()) {
      widest = std::max(widest, fact.arity());
    }
    const tgd::RuleIndex num_rules =
        static_cast<tgd::RuleIndex>(tgds.size());
    for (tgd::RuleIndex ti = 0; ti < num_rules; ++ti) {
      for (const Atom& a : tgds.tgd(ti).body()) {
        widest = std::max(widest, a.arity());
      }
      for (const Atom& a : tgds.tgd(ti).head()) {
        widest = std::max(widest, a.arity());
      }
    }
    std::uint32_t log2 = options.extent_log2;
    while ((std::uint64_t{1} << log2) < widest) ++log2;
    result.instance = Instance(log2);
  }
  Instance& instance = result.instance;
  NullStore nulls(symbols);
  const bool oblivious = options.variant == ChaseVariant::kOblivious;
  FlatFiredSet fired;

  // Cooperative interruption: the cancel token is a relaxed atomic read,
  // polled on every call; the deadline needs a clock read, amortized to
  // one in 64 polls. Polls happen at round, trigger and homomorphism
  // granularity, so even a diverging chase whose rounds keep growing
  // stops within a bounded slice of work.
  const auto start = std::chrono::steady_clock::now();
  const bool has_deadline = options.deadline_ms != 0;
  const auto deadline =
      start + std::chrono::milliseconds(options.deadline_ms);
  std::uint32_t deadline_poll = 0;
  auto stop_requested = [&]() {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return true;
    }
    if (!has_deadline) return false;
    if ((++deadline_poll & 63u) != 0) return false;
    return std::chrono::steady_clock::now() >= deadline;
  };
  bool interrupted = false;
  // Probe-level hook for the homomorphism finders: long match-free joins
  // never reach the per-homomorphism poll, so the finder itself polls
  // this (amortized) and unwinds. Set only when there is something to
  // poll, keeping the probe loop branch-predictable otherwise.
  const std::function<bool()> probe_interrupt = stop_requested;
  const std::function<bool()>* finder_interrupt =
      (options.cancel != nullptr || has_deadline) ? &probe_interrupt
                                                  : nullptr;

  result.stats.database_atoms = db.size();
  if (options.use_delta) instance.EnableDeltaTracking();
  for (const Atom& fact : db.facts()) {
    auto [idx, fresh] = instance.Insert(fact);
    if (fresh && options.build_forest) result.forest.AddRoot(idx);
  }
  if (options.use_delta) instance.AdvanceDelta();

  // Rule-index discipline: every rule loop below compares
  // tgd::RuleIndex against tgd::RuleIndex; the cap check makes the
  // narrowing cast from tgds.size() exact. An over-cap Σ stops cleanly
  // (outcome kResourceExhausted, the database facts above a consistent
  // prefix) before any index arithmetic, planning or scheduling runs.
  const bool rules_overflow = tgds.size() > tgd::kMaxRules;
  const tgd::RuleIndex num_rules =
      rules_overflow ? 0 : static_cast<tgd::RuleIndex>(tgds.size());

  // One join plan per TGD, shared by every round (the body never
  // changes; only the seed position varies) — and by every run, when the
  // caller supplies plans precomputed with PlanJoins (api::Program does).
  JoinPlanSet local_plans;
  const JoinPlanSet* plans = options.plans;
  if (!rules_overflow && options.use_delta &&
      (plans == nullptr || plans->size() != tgds.size())) {
    local_plans = PlanJoins(tgds);
    plans = &local_plans;
  }

  // Cross-rule schedule: the reliance graph's ordered collect-group
  // partition (api::Program supplies a graph precomputed at parse time;
  // standalone runs build their own — a one-off linear pass over Σ).
  // With reliance scheduling off, every rule is its own group, and the
  // round loop walks the same partition shape either way.
  std::optional<graph::RelianceGraph> local_reliances;
  const graph::RelianceGraph* reliances = nullptr;
  std::vector<std::vector<tgd::RuleIndex>> singleton_groups;
  const std::vector<std::vector<tgd::RuleIndex>>* groups =
      &singleton_groups;
  if (options.use_reliances && !rules_overflow) {
    reliances = options.reliances;
    if (reliances == nullptr || reliances->num_rules() != num_rules) {
      local_reliances.emplace(tgds);
      reliances = &*local_reliances;
    }
    groups = &reliances->CollectGroups();
    result.stats.reliance_groups = groups->size();
  } else {
    singleton_groups.reserve(num_rules);
    for (tgd::RuleIndex ti = 0; ti < num_rules; ++ti) {
      singleton_groups.push_back({ti});
    }
  }
  // Restraint-guided mode (restricted variant, opt-in, NOT identity-
  // preserving — see ChaseOptions::restraint_order): precompute every
  // group's restrainers-first apply order once. The order is a pure
  // function of Σ, so the mode stays deterministic and thread-count-
  // invariant even though it deliberately differs from Σ-order.
  const bool restraint_mode =
      options.use_reliances && options.restraint_order &&
      options.variant == ChaseVariant::kRestricted &&
      reliances != nullptr;
  std::vector<std::vector<tgd::RuleIndex>> restraint_orders;
  if (restraint_mode) {
    restraint_orders.reserve(groups->size());
    for (const std::vector<tgd::RuleIndex>& group : *groups) {
      restraint_orders.push_back(reliances->RestraintOrder(group));
    }
  }

  std::size_t delta_begin = 0;
  std::size_t delta_end = instance.size();
  // Scratch of the fused sequential path (collect one rule, apply it,
  // move on) and the per-rule pending lists of the group-mode paths
  // (collect a whole group, then apply its rules in order).
  std::vector<PendingTrigger> pending;
  std::vector<std::vector<PendingTrigger>> rule_pending(num_rules);
  // Per-rule staging of the collect phase's counters (join probes,
  // delta seeds scanned). Group modes scan a whole group's seeds before
  // any member applies, but the fused reference schedule counts a
  // rule's collect work only when the walk reaches that rule — so the
  // staged counters fold into the stats immediately before each apply.
  // An atom-budget trip mid-group then never counts collects the fused
  // walk would not have run, keeping ChaseStats identical on every exit
  // path at every thread count.
  std::vector<std::uint64_t> collect_probes(num_rules, 0);
  std::vector<std::uint64_t> collect_scanned(num_rules, 0);
  // Scratch tuple for the allocation-free probe/insert fast path: every
  // h(atom) is substituted into this buffer and handed to the instance
  // as a span; no Atom is materialized anywhere in the loop.
  std::vector<Term> scratch;

  // Parallel trigger engine. Two phases fan out over one persistent
  // worker pool. Collect: every rule's delta seeds are sharded across
  // workers (requires the delta engine and no forest; the instance and
  // the `fired` set are frozen for the whole region) and a canonical
  // merge restores the sequential firing order. Apply: runs the same
  // staged algorithm at EVERY thread count — candidate head tuples are
  // built into per-trigger slices of a shared buffer and dedup-probed
  // by the sharded batch insert (semi-oblivious/oblivious), or the
  // head-satisfaction pre-checks run read-only against the frozen
  // round-start instance (restricted) — while null creation and the
  // arena commits stay serial in canonical trigger order. Every byte of
  // the result and every deterministic ChaseStats counter is identical
  // to the num_threads == 1 run by construction.
  const std::uint32_t num_workers = ResolveNumThreads(options);
  const bool parallel =
      num_workers > 1 && options.use_delta && !options.build_forest;
  std::optional<util::ThreadPool> pool;
  std::vector<CollectWorker> workers;
  std::vector<SeedTask> seed_tasks;
  if (num_workers > 1) {
    pool.emplace(num_workers);
    if (parallel) workers.resize(pool->workers());
  }
  util::ThreadPool* pool_ptr = pool.has_value() ? &*pool : nullptr;
  std::vector<ApplyWorker> apply_workers(
      pool.has_value() ? pool->workers() : 1);

  // Head-plan and scratch state of the staged apply phase (see the
  // apply block below for the stage walkthrough).
  std::vector<HeadPlan> head_plans;
  if (options.variant != ChaseVariant::kRestricted) {
    head_plans.reserve(num_rules);
    for (tgd::RuleIndex ti = 0; ti < num_rules; ++ti) {
      head_plans.push_back(PlanHead(tgds.tgd(ti)));
    }
  }
  std::vector<Term> bound_nulls;         // pass-1 nulls, E per trigger
  std::vector<Term> apply_terms;         // pass-2 candidate tuple terms
  std::vector<core::BatchTuple> apply_tuples;
  std::vector<std::uint8_t> head_satisfied;  // restricted pre-checks

  // The loop reports its outcome; the observer's OnDone fires on every
  // exit path alike, after the stats are final.
  result.outcome = [&]() -> ChaseOutcome {
  if (rules_overflow) return ChaseOutcome::kResourceExhausted;

  // --- Collect, sequential: one rule against the current instance. ---
  // Enumerates candidate homomorphisms without touching the instance
  // while its index vectors are being iterated. The semi-naive engine
  // only joins through the previous round's delta; the naive baseline
  // re-enumerates everything and lets the `fired` set discard the
  // stale finds. Leaves `pending` in canonical (PendingBefore) order;
  // returns false when the run was interrupted.
  auto collect_rule_sequential =
      [&](tgd::RuleIndex ti, std::vector<PendingTrigger>& pending) {
    const tgd::Tgd& rule = tgds.tgd(ti);
    collect_probes[ti] = 0;
    collect_scanned[ti] = 0;
    HomomorphismFinder finder(instance, options.use_position_index);
    finder.set_probe_counter(&collect_probes[ti]);
    finder.set_interrupt(finder_interrupt);
    auto on_match = [&](const Substitution& h) {
      if (interrupted || stop_requested()) {
        interrupted = true;
        return false;  // stop enumerating; the run is being cancelled
      }
      // Round discipline for the naive baseline, mirroring the delta
      // engine exactly: a trigger is collected in the round whose
      // delta window contains its first (in body order) non-old
      // atom. Homomorphisms made only of pre-window atoms were
      // collected earlier; ones whose first non-old atom was
      // inserted *this* round (by an earlier rule) are deferred —
      // without being recorded as fired — so both engines apply the
      // same triggers in the same rounds and stay byte-identical.
      if (!options.use_delta) {
        bool in_window = false;
        for (const Atom& body_atom : rule.body()) {
          AtomIndex idx = 0;
          ApplySubstitutionInto(body_atom, h, &scratch);
          if (!instance.FindTuple(body_atom.predicate,
                                  core::TermSpan(scratch), &idx)) {
            return true;  // unreachable: h maps the body into I
          }
          if (idx >= delta_begin) {  // first non-old atom
            in_window = idx < delta_end;
            break;
          }
        }
        if (!in_window) return true;
      }
      PendingTrigger trig;
      std::vector<std::uint32_t> key;
      FillPendingTrigger(rule, ti, oblivious, h, &trig, &key);
      if (!fired.Insert(key)) return true;
      if (rule.IsGuarded()) {
        ApplySubstitutionInto(rule.guard(), h, &scratch);
        AtomIndex gi = 0;
        if (instance.FindTuple(rule.guard().predicate,
                               core::TermSpan(scratch), &gi)) {
          trig.guard_image = gi;
        }
      }
      pending.push_back(std::move(trig));
      return true;
    };

    if (options.use_delta) {
      // Semi-naive: seed every join from a delta atom, through the
      // per-predicate delta index and the precomputed join order;
      // body positions before the seed are restricted to pre-delta
      // atoms so each homomorphism is enumerated from exactly one
      // seed.
      const JoinPlan& plan = (*plans)[ti];
      for (std::size_t seed_pos = 0;
           seed_pos < rule.body().size() && !interrupted; ++seed_pos) {
        core::PredicateId seed_pred = rule.body()[seed_pos].predicate;
        const std::vector<AtomIndex>& seeds =
            instance.DeltaAtomsWithPredicate(seed_pred);
        result.stats.delta_atoms_scanned += seeds.size();
        finder.set_old_restriction(&plan.old_flags[seed_pos],
                                   static_cast<AtomIndex>(delta_begin));
        for (AtomIndex a : seeds) {
          if (interrupted) break;
          finder.Enumerate(plan.reordered_bodies[seed_pos],
                           Substitution{}, /*seed_atom=*/0, a, on_match);
        }
      }
      finder.set_old_restriction(nullptr, 0);
    } else {
      // Naive baseline: re-enumerate every homomorphism from the full
      // instance; `fired` discards the ones found in earlier rounds.
      finder.Enumerate(rule.body(), on_match);
    }
    if (interrupted || finder.interrupted()) return false;
    // Both engines find the same trigger set per round, in different
    // orders; sort into canonical order so the firing order (and the
    // restricted-chase result) is engine-independent. (The pooled
    // group collect below merges its worker runs into this order.)
    std::sort(pending.begin(), pending.end(), PendingBefore);
    return true;
  };

  // --- Collect, pooled: one whole group against the group-start ---
  // instance. Every member rule's (seed position, delta atom) pairs
  // become one rule-major task list sharded across the pool. Workers
  // see the instance and the `fired` set frozen (nothing is inserted
  // during the region) and push candidates into thread-local buffers;
  // every order- or state-mutating step happens after the barrier. The
  // group invariant (no member's body predicate meets any member's
  // head predicate) makes this collect byte- and probe-identical to
  // the fused sequential walk, which interleaves member applies
  // between the collects. Fills rule_pending[ti] for every member;
  // *had_tasks reports whether any seeds existed (the cross-rule
  // engagement signal); returns false when interrupted.
  auto collect_group_pooled = [&](const std::vector<tgd::RuleIndex>& group,
                                  bool* had_tasks) {
    seed_tasks.clear();
    for (tgd::RuleIndex ti : group) {
      rule_pending[ti].clear();
      collect_probes[ti] = 0;
      collect_scanned[ti] = 0;
      const tgd::Tgd& rule = tgds.tgd(ti);
      for (std::size_t seed_pos = 0; seed_pos < rule.body().size();
           ++seed_pos) {
        const std::vector<AtomIndex>& seeds =
            instance.DeltaAtomsWithPredicate(
                rule.body()[seed_pos].predicate);
        collect_scanned[ti] += seeds.size();
        for (AtomIndex a : seeds) {
          seed_tasks.push_back(SeedTask{ti, seed_pos, a});
        }
      }
    }
    // No delta atom matches any member's body predicate: the group
    // cannot fire this round -- skip the fork/join entirely.
    *had_tasks = !seed_tasks.empty();
    if (seed_tasks.empty()) return true;
    std::atomic<std::size_t> next_task{0};
    const std::size_t chunk = std::max<std::size_t>(
        1, seed_tasks.size() /
               (static_cast<std::size_t>(pool->workers()) * 8));
    const bool pollable = options.cancel != nullptr || has_deadline;
    // Per-worker probe attribution: the task list is rule-major and a
    // worker's ranges advance monotonically, so its probes form
    // consecutive per-rule runs. Tagging each run with its rule keeps
    // the staged per-rule fold below exact.
    std::vector<std::vector<std::pair<tgd::RuleIndex, std::uint64_t>>>
        rule_probe_runs(workers.size());
    pool->Run([&](unsigned w) {
      CollectWorker& self = workers[w];
      self.candidates.clear();
      self.join_probes = 0;
      self.deadline_poll = 0;
      self.interrupted = false;
      // Per-worker interruption predicate: private poll counter, the
      // same relaxed-atomic token read and amortized clock as the
      // sequential engine's stop_requested.
      const std::function<bool()> stop = [&]() {
        if (options.cancel != nullptr && options.cancel->cancelled()) {
          return true;
        }
        if (!has_deadline) return false;
        if ((++self.deadline_poll & 63u) != 0) return false;
        return std::chrono::steady_clock::now() >= deadline;
      };
      HomomorphismFinder finder(instance, options.use_position_index);
      finder.set_interrupt(pollable ? &stop : nullptr);
      std::vector<std::uint32_t> key;
      // The task loop retargets these whenever the (rule, seed) of the
      // current task changes; tasks are rule-major, so switches are as
      // rare as in the one-rule-at-a-time schedule.
      const tgd::Tgd* rule = nullptr;
      const JoinPlan* plan = nullptr;
      tgd::RuleIndex current_ti = 0;
      std::size_t current_seed_pos = 0;
      auto on_match = [&](const Substitution& h) {
        if (self.interrupted || (pollable && stop())) {
          self.interrupted = true;
          return false;
        }
        PendingTrigger trig;
        FillPendingTrigger(*rule, current_ti, oblivious, h, &trig, &key);
        // `fired` holds only keys recorded before this region began: a
        // concurrent read-only lookup. Duplicates found within the
        // region survive to the merge, which collapses them.
        if (fired.Contains(key)) return true;
        // Cheap local dedup: duplicate homomorphisms produced by one
        // seed (differing only outside the key) arrive consecutively,
        // so comparing against the last candidate catches the bulk of
        // them before they cost merge work. Cross-worker (and
        // non-consecutive) duplicates are collapsed by the canonical
        // merge below.
        if (!self.candidates.empty() &&
            SameTrigger(self.candidates.back(), trig)) {
          return true;
        }
        // No guard image on this path: parallel implies !build_forest,
        // and the guard image feeds only the forest.
        self.candidates.push_back(std::move(trig));
        return true;
      };
      while (!self.interrupted && !finder.interrupted()) {
        const std::size_t begin =
            next_task.fetch_add(chunk, std::memory_order_relaxed);
        if (begin >= seed_tasks.size()) break;
        const std::size_t end = std::min(begin + chunk, seed_tasks.size());
        for (std::size_t i = begin; i < end; ++i) {
          if (self.interrupted || finder.interrupted()) break;
          const SeedTask& task = seed_tasks[i];
          if (plan == nullptr || task.rule != current_ti ||
              task.seed_pos != current_seed_pos) {
            auto& runs = rule_probe_runs[w];
            if (runs.empty() || runs.back().first != task.rule) {
              runs.push_back({task.rule, 0});
            }
            finder.set_probe_counter(&runs.back().second);
            current_ti = task.rule;
            current_seed_pos = task.seed_pos;
            rule = &tgds.tgd(current_ti);
            plan = &(*plans)[current_ti];
            finder.set_old_restriction(
                &plan->old_flags[current_seed_pos],
                static_cast<AtomIndex>(delta_begin));
          }
          finder.Enumerate(plan->reordered_bodies[current_seed_pos],
                           Substitution{}, /*seed_atom=*/0, task.atom,
                           on_match);
        }
      }
      if (finder.interrupted()) self.interrupted = true;
      // Sort locally, still inside the region, so the serial merge
      // below pays O(N runs) comparisons instead of a full sort.
      std::sort(self.candidates.begin(), self.candidates.end(),
                PendingBefore);
    });
    for (std::size_t w = 0; w < workers.size(); ++w) {
      for (const auto& run : rule_probe_runs[w]) {
        collect_probes[run.first] += run.second;
      }
      if (workers[w].interrupted) interrupted = true;
    }
    if (interrupted) return false;
    // Canonical merge: the N sorted runs become one rule-major,
    // PendingBefore-ordered sequence with consecutive duplicates
    // collapsed; every kept trigger is recorded in `fired` and routed
    // to its rule's pending list. Per member rule: the same triggers,
    // in the same order, with the same `fired` entries as the rules
    // collecting one at a time.
    std::vector<std::size_t> heads(workers.size(), 0);
    tgd::RuleIndex last_rule = 0;
    bool have_last = false;
    while (true) {
      std::size_t best_w = workers.size();
      for (std::size_t w = 0; w < workers.size(); ++w) {
        if (heads[w] >= workers[w].candidates.size()) continue;
        if (best_w == workers.size() ||
            PendingBefore(workers[w].candidates[heads[w]],
                          workers[best_w].candidates[heads[best_w]])) {
          best_w = w;
        }
      }
      if (best_w == workers.size()) break;
      PendingTrigger& c = workers[best_w].candidates[heads[best_w]++];
      // The stream is rule-major: a duplicate of c can only be the most
      // recently kept trigger, which sits at the back of c's own rule's
      // list. (SameTrigger across distinct rules is always false.)
      if (have_last && SameTrigger(rule_pending[last_rule].back(), c)) {
        continue;
      }
      fired.Insert(FiredKeyOf(c, oblivious));
      last_rule = c.tgd_index;
      have_last = true;
      rule_pending[c.tgd_index].push_back(std::move(c));
    }
    return true;
  };

  // --- Apply: one rule's canonical pending list -- one staged ---
  // algorithm at every thread count. The parallel stages degenerate to
  // inline loops when no pool exists, so num_threads changes who
  // executes a stage, never what it computes: instance bytes and every
  // deterministic counter are identical across thread counts by
  // construction. Returns kTerminated when the round may continue.
  auto apply_rule = [&](tgd::RuleIndex ti,
                        std::vector<PendingTrigger>& pending)
      -> ChaseOutcome {
    if (pending.empty()) return ChaseOutcome::kTerminated;
    const tgd::Tgd& rule = tgds.tgd(ti);
    const std::vector<Term>& frontier = rule.frontier();
    if (pool_ptr != nullptr) ++result.stats.parallel_apply_batches;
    const bool apply_pollable = options.cancel != nullptr || has_deadline;
    if (options.variant == ChaseVariant::kRestricted) {
      // Restricted chase: a trigger is applied only if no extension
      // h' ⊇ h|fr(σ) already maps head(σ) into the instance.
      //
      // Stage 1 (parallel, read-only): decide head satisfaction for
      // every pending trigger against the frozen batch-start
      // instance. Satisfaction is monotone — the atom set only grows
      // — so a "satisfied at the freeze" verdict is final; only
      // not-yet-satisfied verdicts can be flipped by atoms this very
      // batch inserts, and stage 2 re-checks exactly those, exactly
      // when an insert has happened. Skip/fire decisions therefore
      // match a fully serial walk; join_probes is defined by this
      // staged schedule, deterministically (per-trigger probe counts
      // against a fixed instance, summed — worker assignment can't
      // change the total).
      const std::uint64_t frozen_size = instance.size();
      head_satisfied.assign(pending.size(), 0);
      util::ParallelChunks(
          pool_ptr, pending.size(), 1,
          [&](unsigned w, std::size_t begin, std::size_t end) {
            ApplyWorker& self = apply_workers[w];
            // Per-worker interruption predicate: private poll
            // counter, same token read and amortized clock as
            // stop_requested.
            const std::function<bool()> stop = [&]() {
              if (options.cancel != nullptr &&
                  options.cancel->cancelled()) {
                return true;
              }
              if (!has_deadline) return false;
              if ((++self.deadline_poll & 63u) != 0) return false;
              return std::chrono::steady_clock::now() >= deadline;
            };
            HomomorphismFinder finder(instance,
                                      options.use_position_index);
            finder.set_probe_counter(&self.join_probes);
            finder.set_interrupt(apply_pollable ? &stop : nullptr);
            for (std::size_t t = begin; t < end; ++t) {
              if (self.interrupted || finder.interrupted()) {
                self.interrupted = true;
                break;
              }
              Substitution h;
              for (std::size_t i = 0; i < frontier.size(); ++i) {
                h.emplace(frontier[i], pending[t].frontier_images[i]);
              }
              bool satisfied = false;
              finder.Enumerate(rule.head(), h, /*seed_atom=*/-1,
                               /*seed_target=*/0,
                               [&](const Substitution&) {
                                 satisfied = true;
                                 return false;  // stop at the first
                               });
              head_satisfied[t] = satisfied ? 1 : 0;
            }
            if (finder.interrupted()) self.interrupted = true;
          });
      bool apply_interrupted = false;
      for (ApplyWorker& worker : apply_workers) {
        result.stats.join_probes += worker.join_probes;
        worker.join_probes = 0;
        if (worker.interrupted) apply_interrupted = true;
        worker.interrupted = false;
      }
      // An aborted satisfaction check certifies nothing: stop before
      // applying (or skipping) any of this batch's triggers.
      if (apply_interrupted) return ChaseOutcome::kCancelled;

      // Stage 2 (serial, canonical order): skip or fire.
      for (std::size_t t = 0; t < pending.size(); ++t) {
        const PendingTrigger& trig = pending[t];
        if (stop_requested()) return ChaseOutcome::kCancelled;
        Substitution h;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          h.emplace(frontier[i], trig.frontier_images[i]);
        }
        bool satisfied = head_satisfied[t] != 0;
        if (!satisfied && instance.size() > frozen_size) {
          // Atoms inserted by earlier triggers of this batch may
          // have satisfied the head since the freeze; once
          // satisfied, monotonicity keeps the trigger satisfied
          // forever, so the `fired` entry can stand.
          HomomorphismFinder head_finder(instance,
                                         options.use_position_index);
          head_finder.set_probe_counter(&result.stats.join_probes);
          head_finder.set_interrupt(finder_interrupt);
          head_finder.Enumerate(rule.head(), h, /*seed_atom=*/-1,
                                /*seed_target=*/0,
                                [&](const Substitution&) {
                                  satisfied = true;
                                  return false;  // stop at the first
                                });
          if (head_finder.interrupted()) {
            return ChaseOutcome::kCancelled;
          }
        }
        if (satisfied) {
          ++result.stats.triggers_satisfied;
          continue;
        }
        ++result.stats.triggers_fired;
        bound_nulls.clear();
        NullStore::BindResult bind = nulls.BindTriggerNulls(
            ti, rule.existential(), trig.frontier_images,
            trig.frontier_images, options.max_depth, &bound_nulls,
            &result.stats.max_depth);
        if (options.observer != nullptr && !bound_nulls.empty()) {
          options.observer->OnNullsBound(
              ti, bound_nulls.data(), bound_nulls.size(),
              trig.frontier_images.data(), trig.frontier_images.size());
        }
        if (bind != NullStore::BindResult::kOk) {
          // Depth budget breached, or null ids wrapped past Term's
          // index space: stop with a consistent prefix. The trigger
          // was counted as fired; keep OnFire parity.
          if (options.observer != nullptr) {
            options.observer->OnFire(trig.tgd_index, instance.size());
          }
          return bind == NullStore::BindResult::kDepthLimit
                     ? ChaseOutcome::kDepthLimit
                     : ChaseOutcome::kResourceExhausted;
        }
        for (std::size_t i = 0; i < rule.existential().size(); ++i) {
          h.emplace(rule.existential()[i], bound_nulls[i]);
        }
        for (const Atom& head_atom : rule.head()) {
          ApplySubstitutionInto(head_atom, h, &scratch);
          auto [idx, fresh] = instance.InsertTuple(
              head_atom.predicate, core::TermSpan(scratch));
          if (fresh && options.build_forest) {
            std::uint32_t atom_depth = 0;
            for (Term term : instance.atom(idx).terms()) {
              atom_depth = std::max(atom_depth, symbols->depth(term));
            }
            if (trig.guard_image == PendingTrigger::kNoGuard) {
              result.forest.AddFloating(idx, atom_depth);
            } else {
              result.forest.AddChild(idx, trig.guard_image,
                                     atom_depth);
            }
          }
          if (instance.size() > options.max_atoms) {
            // As above: the budget-tripping trigger did fire.
            if (options.observer != nullptr) {
              options.observer->OnFire(trig.tgd_index,
                                       instance.size());
            }
            return ChaseOutcome::kAtomLimit;
          }
        }
        if (options.observer != nullptr) {
          options.observer->OnFire(trig.tgd_index, instance.size());
        }
      }
    } else {
      // Semi-oblivious / oblivious: every pending trigger fires.
      //
      // Pass 1 (serial, canonical order): bind every trigger's
      // existential nulls. Null names are functional in the firing
      // key, so binding in canonical trigger order keeps the name
      // assignment identical to a serial walk; a depth or id-space
      // failure truncates the batch — earlier triggers still apply,
      // and the failure is reported after they merge (first error in
      // canonical order wins, exactly as a serial walk would).
      const std::size_t num_existential = rule.existential().size();
      std::size_t batch_n = pending.size();
      ChaseOutcome stop_outcome = ChaseOutcome::kTerminated;
      bound_nulls.clear();
      for (std::size_t t = 0; t < pending.size(); ++t) {
        const PendingTrigger& trig = pending[t];
        const std::size_t bound_before = bound_nulls.size();
        NullStore::BindResult bind = nulls.BindTriggerNulls(
            ti, rule.existential(),
            oblivious ? trig.body_images : trig.frontier_images,
            trig.frontier_images, options.max_depth, &bound_nulls,
            &result.stats.max_depth);
        if (options.observer != nullptr &&
            bound_nulls.size() > bound_before) {
          options.observer->OnNullsBound(
              ti, bound_nulls.data() + bound_before,
              bound_nulls.size() - bound_before,
              trig.frontier_images.data(), trig.frontier_images.size());
        }
        if (bind != NullStore::BindResult::kOk) {
          batch_n = t;
          stop_outcome = bind == NullStore::BindResult::kDepthLimit
                             ? ChaseOutcome::kDepthLimit
                             : ChaseOutcome::kResourceExhausted;
          break;
        }
      }

      // Pass 2 (parallel): build every candidate head tuple into the
      // trigger's slice of the shared buffer. Pure reads of the head
      // plan, the frontier images and the pass-1 nulls; pure writes
      // of disjoint slices — worker assignment cannot affect a byte.
      const HeadPlan& hplan = head_plans[ti];
      const std::size_t num_heads = rule.head().size();
      apply_terms.resize(batch_n * hplan.terms_per_trigger);
      apply_tuples.resize(batch_n * num_heads);
      util::ParallelChunks(
          pool_ptr, batch_n, 16,
          [&](unsigned, std::size_t begin, std::size_t end) {
            for (std::size_t t = begin; t < end; ++t) {
              const PendingTrigger& trig = pending[t];
              const std::size_t base = t * hplan.terms_per_trigger;
              for (std::size_t s = 0; s < hplan.slots.size(); ++s) {
                const HeadSlot& slot = hplan.slots[s];
                apply_terms[base + s] =
                    slot.existential
                        ? bound_nulls[t * num_existential + slot.index]
                        : trig.frontier_images[slot.index];
              }
              for (std::size_t j = 0; j < num_heads; ++j) {
                core::BatchTuple tuple = hplan.tuples[j];
                tuple.begin += base;
                apply_tuples[t * num_heads + j] = tuple;
              }
            }
          });

      // Pass 3: sharded parallel dedup probes + serial canonical
      // merge. The merge callback runs on this thread in batch order
      // and is the only place triggers are counted, observers fire
      // and budgets trip — bookkeeping identical to the serial walk.
      ChaseOutcome merge_stop = ChaseOutcome::kTerminated;
      if (pool_ptr != nullptr) ++result.stats.parallel_commit_batches;
      instance.InsertTupleBatch(
          apply_terms.data(), apply_tuples, pool_ptr,
          [&](std::size_t pos, AtomIndex idx, bool fresh) {
            const std::size_t t = pos / num_heads;
            const std::size_t j = pos % num_heads;
            const PendingTrigger& trig = pending[t];
            if (j == 0) {
              if (stop_requested()) {
                merge_stop = ChaseOutcome::kCancelled;
                return false;
              }
              ++result.stats.triggers_fired;
            }
            if (fresh && options.build_forest) {
              std::uint32_t atom_depth = 0;
              for (Term term : instance.atom(idx).terms()) {
                atom_depth = std::max(atom_depth, symbols->depth(term));
              }
              if (trig.guard_image == PendingTrigger::kNoGuard) {
                result.forest.AddFloating(idx, atom_depth);
              } else {
                result.forest.AddChild(idx, trig.guard_image,
                                       atom_depth);
              }
            }
            if (instance.size() > options.max_atoms) {
              // The budget-tripping trigger did fire: keep the
              // observer's OnFire tally equal to triggers_fired.
              if (options.observer != nullptr) {
                options.observer->OnFire(trig.tgd_index,
                                         instance.size());
              }
              merge_stop = ChaseOutcome::kAtomLimit;
              return false;
            }
            if (j == num_heads - 1 && options.observer != nullptr) {
              options.observer->OnFire(trig.tgd_index, instance.size());
            }
            return true;
          });
      if (merge_stop != ChaseOutcome::kTerminated) return merge_stop;
      if (stop_outcome != ChaseOutcome::kTerminated) {
        // The pass-1 failure at pending[batch_n] is this batch's
        // first error in canonical order (every earlier trigger
        // merged cleanly). The tripping trigger did fire; keep
        // OnFire parity.
        ++result.stats.triggers_fired;
        if (options.observer != nullptr) {
          options.observer->OnFire(pending[batch_n].tgd_index,
                                   instance.size());
        }
        return stop_outcome;
      }
    }
    return ChaseOutcome::kTerminated;
  };

  // Fold one rule's staged collect counters into the stats, at the
  // exact point where the fused reference walk has just finished that
  // rule's collect: immediately before its apply.
  auto fold_collect_stats = [&](tgd::RuleIndex ti) {
    result.stats.join_probes += collect_probes[ti];
    result.stats.delta_atoms_scanned += collect_scanned[ti];
    collect_probes[ti] = 0;
    collect_scanned[ti] = 0;
  };

  while (delta_begin < delta_end) {
    if (options.max_rounds != 0 &&
        result.stats.rounds >= options.max_rounds) {
      return ChaseOutcome::kRoundLimit;
    }
    if (stop_requested()) return ChaseOutcome::kCancelled;
    ++result.stats.rounds;
    if (parallel) ++result.stats.parallel_rounds;
    if (options.observer != nullptr) {
      RoundProgress progress;
      progress.round = result.stats.rounds;
      progress.atoms = instance.size();
      progress.delta_atoms = delta_end - delta_begin;
      progress.triggers_fired = result.stats.triggers_fired;
      options.observer->OnRound(progress);
    }

    // The round walks the ordered group partition of Sigma (every rule
    // its own group when reliance scheduling is off -- the historical
    // schedule, exactly). Three shapes, one semantics:
    //   pooled -- the group collect fans out over the pool, then the
    //             applies run serially in apply order;
    //   group  -- sequential collect of every member against the
    //             group-start instance, then ordered applies (the
    //             restraint path when no pool exists);
    //   fused  -- collect a rule, apply it, move on (the reference
    //             path; inside a group the three shapes are
    //             byte-identical by the group invariant).
    bool round_cross_rule = false;
    for (std::size_t g = 0; g < groups->size(); ++g) {
      const std::vector<tgd::RuleIndex>& group = (*groups)[g];
      const std::vector<tgd::RuleIndex>& order =
          restraint_mode ? restraint_orders[g] : group;
      if (parallel) {
        bool had_tasks = false;
        if (!collect_group_pooled(group, &had_tasks)) {
          return ChaseOutcome::kCancelled;
        }
        if (had_tasks && group.size() > 1) round_cross_rule = true;
        for (tgd::RuleIndex ti : order) {
          fold_collect_stats(ti);
          const ChaseOutcome oc = apply_rule(ti, rule_pending[ti]);
          if (oc != ChaseOutcome::kTerminated) return oc;
        }
      } else if (restraint_mode && group.size() > 1) {
        for (tgd::RuleIndex ti : group) {
          rule_pending[ti].clear();
          if (!collect_rule_sequential(ti, rule_pending[ti])) {
            return ChaseOutcome::kCancelled;
          }
        }
        for (tgd::RuleIndex ti : order) {
          fold_collect_stats(ti);
          const ChaseOutcome oc = apply_rule(ti, rule_pending[ti]);
          if (oc != ChaseOutcome::kTerminated) return oc;
        }
      } else {
        for (tgd::RuleIndex ti : group) {
          pending.clear();
          if (!collect_rule_sequential(ti, pending)) {
            return ChaseOutcome::kCancelled;
          }
          fold_collect_stats(ti);
          const ChaseOutcome oc = apply_rule(ti, pending);
          if (oc != ChaseOutcome::kTerminated) return oc;
        }
      }
    }
    if (round_cross_rule) ++result.stats.cross_rule_parallel_rounds;

    delta_begin = delta_end;
    delta_end = instance.size();
    if (options.use_delta) instance.AdvanceDelta();
  }

  return ChaseOutcome::kTerminated;
  }();

  result.stats.arena_bytes = instance.arena_bytes();
  result.stats.peak_atoms = instance.size();

  if (options.observer != nullptr) {
    options.observer->OnDone(result.outcome, result.stats);
  }
  return result;
}

ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db) {
  return RunChase(symbols, tgds, db, ChaseOptions{});
}

}  // namespace chase
}  // namespace nuchase
