#include "chase/chase.h"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "chase/null_store.h"
#include "chase/trigger.h"
#include "util/hash.h"

namespace nuchase {
namespace chase {

using core::Atom;
using core::AtomIndex;
using core::Instance;
using core::Term;

const char* ChaseVariantName(ChaseVariant variant) {
  switch (variant) {
    case ChaseVariant::kSemiOblivious:
      return "semi-oblivious";
    case ChaseVariant::kOblivious:
      return "oblivious";
    case ChaseVariant::kRestricted:
      return "restricted";
  }
  return "?";
}

const char* ChaseOutcomeName(ChaseOutcome outcome) {
  switch (outcome) {
    case ChaseOutcome::kTerminated:
      return "terminated";
    case ChaseOutcome::kAtomLimit:
      return "atom-limit";
    case ChaseOutcome::kDepthLimit:
      return "depth-limit";
    case ChaseOutcome::kRoundLimit:
      return "round-limit";
    case ChaseOutcome::kCancelled:
      return "cancelled";
    case ChaseOutcome::kResourceExhausted:
      return "resource-exhausted";
  }
  return "?";
}

JoinPlanSet PlanJoins(const tgd::TgdSet& tgds) {
  JoinPlanSet plans;
  plans.reserve(tgds.size());
  for (std::uint32_t ti = 0; ti < tgds.size(); ++ti) {
    const std::vector<Atom>& body = tgds.tgd(ti).body();
    JoinPlan plan;
    plan.reordered_bodies.resize(body.size());
    plan.old_flags.resize(body.size());
    for (std::size_t p = 0; p < body.size(); ++p) {
      std::vector<std::size_t> order = PlanJoinOrder(body, p);
      std::vector<Atom>& reordered = plan.reordered_bodies[p];
      std::vector<bool>& old_only = plan.old_flags[p];
      reordered.reserve(body.size());
      old_only.reserve(body.size());
      for (std::size_t i : order) {
        reordered.push_back(body[i]);
        old_only.push_back(i < p);
      }
    }
    plans.push_back(std::move(plan));
  }
  return plans;
}

namespace {

/// A collected, not-yet-applied trigger: the TGD index, the frontier
/// images (in sorted-frontier order), the full body-variable images (in
/// sorted-body-variable order; only kept by the oblivious variant, which
/// names nulls by them), and the instance index of the guard image
/// (kNoGuard when the TGD is not guarded).
struct PendingTrigger {
  std::uint32_t tgd_index;
  std::vector<Term> frontier_images;
  std::vector<Term> body_images;
  AtomIndex guard_image;

  static constexpr AtomIndex kNoGuard = 0xffffffffu;
};

/// Canonical within-round order: by frontier images, then body images.
/// Both engines (delta-seeded and full-scan) enumerate the same trigger
/// set per round but in different orders; sorting before the apply phase
/// makes the firing order — and hence the restricted-chase result —
/// independent of the engine, so the ablation cells stay byte-identical.
bool PendingBefore(const PendingTrigger& a, const PendingTrigger& b) {
  if (a.frontier_images != b.frontier_images) {
    return a.frontier_images < b.frontier_images;
  }
  return a.body_images < b.body_images;
}

}  // namespace

ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db,
                     const ChaseOptions& options) {
  ChaseResult result;
  Instance& instance = result.instance;
  NullStore nulls(symbols);
  std::unordered_set<std::vector<std::uint32_t>,
                     util::VectorHash<std::uint32_t>>
      fired;

  // Cooperative interruption: the cancel token is a relaxed atomic read,
  // polled on every call; the deadline needs a clock read, amortized to
  // one in 64 polls. Polls happen at round, trigger and homomorphism
  // granularity, so even a diverging chase whose rounds keep growing
  // stops within a bounded slice of work.
  const auto start = std::chrono::steady_clock::now();
  const bool has_deadline = options.deadline_ms != 0;
  const auto deadline =
      start + std::chrono::milliseconds(options.deadline_ms);
  std::uint32_t deadline_poll = 0;
  auto stop_requested = [&]() {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      return true;
    }
    if (!has_deadline) return false;
    if ((++deadline_poll & 63u) != 0) return false;
    return std::chrono::steady_clock::now() >= deadline;
  };
  bool interrupted = false;
  // Probe-level hook for the homomorphism finders: long match-free joins
  // never reach the per-homomorphism poll, so the finder itself polls
  // this (amortized) and unwinds. Set only when there is something to
  // poll, keeping the probe loop branch-predictable otherwise.
  const std::function<bool()> probe_interrupt = stop_requested;
  const std::function<bool()>* finder_interrupt =
      (options.cancel != nullptr || has_deadline) ? &probe_interrupt
                                                  : nullptr;

  result.stats.database_atoms = db.size();
  if (options.use_delta) instance.EnableDeltaTracking();
  for (const Atom& fact : db.facts()) {
    auto [idx, fresh] = instance.Insert(fact);
    if (fresh && options.build_forest) result.forest.AddRoot(idx);
  }
  if (options.use_delta) instance.AdvanceDelta();

  // One join plan per TGD, shared by every round (the body never
  // changes; only the seed position varies) — and by every run, when the
  // caller supplies plans precomputed with PlanJoins (api::Program does).
  JoinPlanSet local_plans;
  const JoinPlanSet* plans = options.plans;
  if (options.use_delta && (plans == nullptr ||
                            plans->size() != tgds.size())) {
    local_plans = PlanJoins(tgds);
    plans = &local_plans;
  }

  std::size_t delta_begin = 0;
  std::size_t delta_end = instance.size();
  std::vector<PendingTrigger> pending;
  // Scratch tuple for the allocation-free probe/insert fast path: every
  // h(atom) is substituted into this buffer and handed to the instance
  // as a span; no Atom is materialized anywhere in the loop.
  std::vector<Term> scratch;

  // The loop reports its outcome; the observer's OnDone fires on every
  // exit path alike, after the stats are final.
  result.outcome = [&]() -> ChaseOutcome {
  while (delta_begin < delta_end) {
    if (options.max_rounds != 0 &&
        result.stats.rounds >= options.max_rounds) {
      return ChaseOutcome::kRoundLimit;
    }
    if (stop_requested()) return ChaseOutcome::kCancelled;
    ++result.stats.rounds;
    if (options.observer != nullptr) {
      RoundProgress progress;
      progress.round = result.stats.rounds;
      progress.atoms = instance.size();
      progress.delta_atoms = delta_end - delta_begin;
      progress.triggers_fired = result.stats.triggers_fired;
      options.observer->OnRound(progress);
    }

    for (std::uint32_t ti = 0; ti < tgds.size(); ++ti) {
      const tgd::Tgd& rule = tgds.tgd(ti);
      const std::vector<Term>& frontier = rule.frontier();

      // Collect phase: enumerate candidate homomorphisms; do not touch
      // the instance while its index vectors are being iterated. The
      // semi-naive engine only joins through the previous round's delta;
      // the naive baseline re-enumerates everything and lets the `fired`
      // set discard the stale finds.
      pending.clear();
      HomomorphismFinder finder(instance, options.use_position_index);
      finder.set_probe_counter(&result.stats.join_probes);
      finder.set_interrupt(finder_interrupt);
      auto on_match = [&](const Substitution& h) {
        if (interrupted || stop_requested()) {
          interrupted = true;
          return false;  // stop enumerating; the run is being cancelled
        }
        // Round discipline for the naive baseline, mirroring the delta
        // engine exactly: a trigger is collected in the round whose
        // delta window contains its first (in body order) non-old
        // atom. Homomorphisms made only of pre-window atoms were
        // collected earlier; ones whose first non-old atom was
        // inserted *this* round (by an earlier rule) are deferred —
        // without being recorded as fired — so both engines apply the
        // same triggers in the same rounds and stay byte-identical.
        if (!options.use_delta) {
          bool in_window = false;
          for (const Atom& body_atom : rule.body()) {
            AtomIndex idx = 0;
            ApplySubstitutionInto(body_atom, h, &scratch);
            if (!instance.FindTuple(body_atom.predicate,
                                    core::TermSpan(scratch), &idx)) {
              return true;  // unreachable: h maps the body into I
            }
            if (idx >= delta_begin) {  // first non-old atom
              in_window = idx < delta_end;
              break;
            }
          }
          if (!in_window) return true;
        }
        // Dedup key: (σ, h|fr(σ)) for the semi-oblivious and
        // restricted variants (both result and head-satisfaction
        // depend only on the frontier restriction), (σ, h) for
        // the oblivious one.
        PendingTrigger trig;
        trig.tgd_index = ti;
        trig.frontier_images.reserve(frontier.size());
        for (Term v : frontier) {
          trig.frontier_images.push_back(h.at(v));
        }
        std::vector<std::uint32_t> key;
        key.push_back(ti);
        if (options.variant == ChaseVariant::kOblivious) {
          const std::vector<Term>& body_vars = rule.body_variables();
          trig.body_images.reserve(body_vars.size());
          for (Term v : body_vars) {
            Term image = h.at(v);
            key.push_back(image.bits());
            trig.body_images.push_back(image);
          }
        } else {
          for (Term image : trig.frontier_images) {
            key.push_back(image.bits());
          }
        }
        if (!fired.insert(std::move(key)).second) return true;
        trig.guard_image = PendingTrigger::kNoGuard;
        if (rule.IsGuarded()) {
          ApplySubstitutionInto(rule.guard(), h, &scratch);
          AtomIndex gi = 0;
          if (instance.FindTuple(rule.guard().predicate,
                                 core::TermSpan(scratch), &gi)) {
            trig.guard_image = gi;
          }
        }
        pending.push_back(std::move(trig));
        return true;
      };

      if (options.use_delta) {
        // Semi-naive: seed every join from a delta atom, through the
        // per-predicate delta index and the precomputed join order;
        // body positions before the seed are restricted to pre-delta
        // atoms so each homomorphism is enumerated from exactly one
        // seed.
        const JoinPlan& plan = (*plans)[ti];
        for (std::size_t seed_pos = 0;
             seed_pos < rule.body().size() && !interrupted; ++seed_pos) {
          core::PredicateId seed_pred = rule.body()[seed_pos].predicate;
          const std::vector<AtomIndex>& seeds =
              instance.DeltaAtomsWithPredicate(seed_pred);
          result.stats.delta_atoms_scanned += seeds.size();
          finder.set_old_restriction(&plan.old_flags[seed_pos],
                                     static_cast<AtomIndex>(delta_begin));
          for (AtomIndex a : seeds) {
            if (interrupted) break;
            finder.Enumerate(plan.reordered_bodies[seed_pos],
                             Substitution{}, /*seed_atom=*/0, a, on_match);
          }
        }
        finder.set_old_restriction(nullptr, 0);
      } else {
        // Naive baseline: re-enumerate every homomorphism from the full
        // instance; `fired` discards the ones found in earlier rounds.
        finder.Enumerate(rule.body(), on_match);
      }
      if (interrupted || finder.interrupted()) {
        return ChaseOutcome::kCancelled;
      }

      // Both engines find the same trigger set per round, in different
      // orders; apply in canonical order so the firing order (and the
      // restricted-chase result) is engine-independent.
      std::sort(pending.begin(), pending.end(), PendingBefore);

      // Apply phase.
      for (const PendingTrigger& trig : pending) {
        if (stop_requested()) return ChaseOutcome::kCancelled;
        // Bind frontier variables.
        Substitution h;
        for (std::size_t i = 0; i < frontier.size(); ++i) {
          h.emplace(frontier[i], trig.frontier_images[i]);
        }
        // Restricted chase: the trigger is applied only if no extension
        // h' ⊇ h|fr(σ) already maps head(σ) into the instance. The check
        // runs against the *current* instance, so atoms added earlier in
        // this very round already count; once satisfied, monotonicity
        // keeps the trigger satisfied forever, so the `fired` entry can
        // stand.
        if (options.variant == ChaseVariant::kRestricted) {
          HomomorphismFinder head_finder(instance,
                                         options.use_position_index);
          head_finder.set_probe_counter(&result.stats.join_probes);
          head_finder.set_interrupt(finder_interrupt);
          bool satisfied = false;
          head_finder.Enumerate(rule.head(), h, /*seed_atom=*/-1,
                                /*seed_target=*/0,
                                [&](const Substitution&) {
                                  satisfied = true;
                                  return false;  // stop at the first
                                });
          // An aborted satisfaction check certifies nothing: stop
          // before applying (or skipping) this trigger.
          if (head_finder.interrupted()) {
            return ChaseOutcome::kCancelled;
          }
          if (satisfied) {
            ++result.stats.triggers_satisfied;
            continue;
          }
        }
        ++result.stats.triggers_fired;
        // Invent nulls for the existential variables.
        for (Term z : rule.existential()) {
          util::StatusOr<Term> null_or =
              options.variant == ChaseVariant::kOblivious
                  ? nulls.GetOrCreate(ti, z, trig.body_images,
                                      trig.frontier_images)
                  : nulls.GetOrCreate(ti, z, trig.frontier_images);
          if (!null_or.ok()) {
            // Null ids wrapped past Term's index space: stop with a
            // consistent prefix instead of silently aliasing nulls. The
            // trigger was counted as fired; keep OnFire parity.
            if (options.observer != nullptr) {
              options.observer->OnFire(trig.tgd_index, instance.size());
            }
            return ChaseOutcome::kResourceExhausted;
          }
          Term null = *null_or;
          std::uint32_t d = symbols->depth(null);
          result.stats.max_depth = std::max(result.stats.max_depth, d);
          if (options.max_depth != 0 && d > options.max_depth) {
            // The trigger was counted as fired: keep the observer's
            // OnFire tally equal to stats.triggers_fired on every path.
            if (options.observer != nullptr) {
              options.observer->OnFire(trig.tgd_index, instance.size());
            }
            return ChaseOutcome::kDepthLimit;
          }
          h.emplace(z, null);
        }
        for (const Atom& head_atom : rule.head()) {
          ApplySubstitutionInto(head_atom, h, &scratch);
          auto [idx, fresh] = instance.InsertTuple(
              head_atom.predicate, core::TermSpan(scratch));
          if (fresh && options.build_forest) {
            std::uint32_t atom_depth = 0;
            for (Term t : instance.atom(idx).terms()) {
              atom_depth = std::max(atom_depth, symbols->depth(t));
            }
            if (trig.guard_image == PendingTrigger::kNoGuard) {
              result.forest.AddFloating(idx, atom_depth);
            } else {
              result.forest.AddChild(idx, trig.guard_image, atom_depth);
            }
          }
          if (instance.size() > options.max_atoms) {
            // As above: the budget-tripping trigger did fire.
            if (options.observer != nullptr) {
              options.observer->OnFire(trig.tgd_index, instance.size());
            }
            return ChaseOutcome::kAtomLimit;
          }
        }
        if (options.observer != nullptr) {
          options.observer->OnFire(trig.tgd_index, instance.size());
        }
      }
    }

    delta_begin = delta_end;
    delta_end = instance.size();
    if (options.use_delta) instance.AdvanceDelta();
  }

  return ChaseOutcome::kTerminated;
  }();

  result.stats.arena_bytes = instance.arena_bytes();
  result.stats.peak_atoms = instance.size();

  if (options.observer != nullptr) {
    options.observer->OnDone(result.outcome, result.stats);
  }
  return result;
}

ChaseResult RunChase(core::SymbolScope* symbols, const tgd::TgdSet& tgds,
                     const core::Database& db) {
  return RunChase(symbols, tgds, db, ChaseOptions{});
}

}  // namespace chase
}  // namespace nuchase
