#ifndef NUCHASE_REWRITE_LINEARIZE_H_
#define NUCHASE_REWRITE_LINEARIZE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/symbol_table.h"
#include "rewrite/simplify.h"
#include "saturation/canonical.h"
#include "saturation/type_oracle.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace rewrite {

/// A Σ-type τ = (α, T) (Appendix E): a canonical guard atom α over the
/// integers 1..k (numbered by first occurrence) together with a set T of
/// atoms over dom(α). [τ] becomes a fresh predicate of arity ar(α).
struct SigmaType {
  saturation::CAtom guard;
  saturation::CAtomSet others;  // T = atoms(τ) \ {guard}

  /// Canonical interning string, also the [τ] predicate name, e.g.
  /// "[R(1,1,2,3)|Q(1,3)]".
  std::string Name(const core::SymbolTable& symbols) const;
};

/// Result of linearizing (D, Σ) for guarded Σ (Section 8): lin(D), the
/// fragment of lin(Σ) reachable from the types of lin(D), and the [τ]
/// registry. Unreachable Σ-types cannot occur in chase(lin(D), lin(Σ))
/// nor make a cycle lin(D)-supported, so every decider built on this
/// fragment is faithful (see DESIGN.md).
struct Linearized {
  core::Database database;
  tgd::TgdSet tgds;
  /// [τ] predicate → its Σ-type.
  std::unordered_map<core::PredicateId, SigmaType> types;
  /// Number of Σ-types generated (= types.size()).
  std::size_t num_types = 0;
};

/// Options bounding the (exponential in general) type generation.
struct LinearizeOptions {
  std::uint64_t max_types = 100000;
  saturation::TypeOracle::Options oracle;
};

/// Computes lin(D) and the reachable fragment of lin(Σ). Fails
/// (FailedPrecondition) if Σ is not guarded, or (ResourceExhausted) when
/// budgets are hit.
util::StatusOr<Linearized> Linearize(const core::Database& db,
                                     const tgd::TgdSet& tgds,
                                     core::SymbolTable* symbols,
                                     const LinearizeOptions& options);

/// gsimple(·) = simple(lin(·)) (Section 8): the composed rewriting used
/// by Theorem 8.3. The returned simplifier retains predicate origins.
struct GSimplified {
  core::Database database;
  tgd::TgdSet tgds;
  std::size_t num_types = 0;
  std::size_t num_linear_tgds = 0;
};

util::StatusOr<GSimplified> GSimplify(const core::Database& db,
                                      const tgd::TgdSet& tgds,
                                      core::SymbolTable* symbols,
                                      const LinearizeOptions& options);

}  // namespace rewrite
}  // namespace nuchase

#endif  // NUCHASE_REWRITE_LINEARIZE_H_
