#include "rewrite/simplify.h"

#include <algorithm>
#include <cassert>
#include <functional>
#include <set>

namespace nuchase {
namespace rewrite {

using core::Atom;
using core::Term;

std::vector<std::uint32_t> IdPattern(const std::vector<Term>& tuple) {
  std::vector<std::uint32_t> pattern;
  pattern.reserve(tuple.size());
  std::vector<Term> seen;
  for (Term t : tuple) {
    auto it = std::find(seen.begin(), seen.end(), t);
    if (it == seen.end()) {
      seen.push_back(t);
      pattern.push_back(static_cast<std::uint32_t>(seen.size()));
    } else {
      pattern.push_back(
          static_cast<std::uint32_t>(it - seen.begin()) + 1);
    }
  }
  return pattern;
}

core::PredicateId Simplifier::InternSimplifiedPredicate(
    core::PredicateId original, const std::vector<std::uint32_t>& pattern) {
  std::string name = symbols_->predicate_name(original);
  name += '[';
  std::uint32_t arity = 0;
  for (std::size_t i = 0; i < pattern.size(); ++i) {
    if (i > 0) name += ',';
    name += std::to_string(pattern[i]);
    arity = std::max(arity, pattern[i]);
  }
  name += ']';
  auto pred = symbols_->InternPredicate(name, arity);
  assert(pred.ok() && "simplified predicate arity collision");
  origins_.emplace(*pred, OriginInfo{original, pattern});
  return *pred;
}

Atom Simplifier::SimplifyAtom(const Atom& atom) {
  std::vector<std::uint32_t> pattern = IdPattern(atom.args);
  core::PredicateId pred =
      InternSimplifiedPredicate(atom.predicate, pattern);
  // unique(t̄): first occurrences in order.
  std::vector<Term> unique_args;
  for (std::size_t i = 0; i < atom.args.size(); ++i) {
    if (pattern[i] == unique_args.size() + 1) {
      unique_args.push_back(atom.args[i]);
    }
  }
  return Atom(pred, std::move(unique_args));
}

core::Database Simplifier::SimplifyDatabase(const core::Database& db) {
  core::Database out;
  for (const Atom& fact : db.facts()) {
    util::Status st = out.AddFact(SimplifyAtom(fact));
    assert(st.ok());
    (void)st;
  }
  return out;
}

void Simplifier::EnumerateSpecializations(
    const std::vector<Term>& distinct_vars,
    const std::function<void(const std::unordered_map<Term, Term>&)>& cb) {
  std::unordered_map<Term, Term> f;
  std::vector<Term> image;  // distinct images chosen so far, in order
  std::function<void(std::size_t)> recurse = [&](std::size_t i) {
    if (i == distinct_vars.size()) {
      cb(f);
      return;
    }
    Term u = distinct_vars[i];
    // Choice 1: keep u as itself (a fresh image).
    f[u] = u;
    image.push_back(u);
    recurse(i + 1);
    image.pop_back();
    // Choice 2: merge with any earlier image.
    std::set<Term> earlier(image.begin(), image.end());
    for (Term e : earlier) {
      f[u] = e;
      recurse(i + 1);
    }
    f.erase(u);
  };
  recurse(0);
}

util::StatusOr<tgd::TgdSet> Simplifier::SimplifyTgds(
    const tgd::TgdSet& tgds) {
  tgd::TgdSet out;
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!rule.IsLinear()) {
      return util::Status::FailedPrecondition(
          "simplification is defined for linear TGDs");
    }
    const Atom& body_atom = rule.body()[0];
    // Distinct body variables in first-occurrence order.
    std::vector<Term> distinct_vars;
    for (Term t : body_atom.args) {
      if (std::find(distinct_vars.begin(), distinct_vars.end(), t) ==
          distinct_vars.end()) {
        distinct_vars.push_back(t);
      }
    }

    std::set<std::pair<std::vector<Atom>, std::vector<Atom>>> emitted;
    util::Status failure = util::Status::OK();
    EnumerateSpecializations(
        distinct_vars, [&](const std::unordered_map<Term, Term>& f) {
          auto apply = [&](const Atom& a) {
            Atom mapped = a;
            for (Term& t : mapped.args) {
              auto it = f.find(t);
              if (it != f.end()) t = it->second;
              // Existential variables are untouched (not in f's domain).
            }
            return SimplifyAtom(mapped);
          };
          std::vector<Atom> new_body{apply(body_atom)};
          std::vector<Atom> new_head;
          new_head.reserve(rule.head().size());
          for (const Atom& h : rule.head()) new_head.push_back(apply(h));
          if (!emitted.emplace(new_body, new_head).second) return;
          auto simplified =
              tgd::Tgd::Create(std::move(new_body), std::move(new_head));
          if (!simplified.ok()) {
            failure = simplified.status();
            return;
          }
          out.Add(std::move(*simplified));
        });
    if (!failure.ok()) return failure;
  }
  return out;
}

bool Simplifier::Origin(core::PredicateId simplified,
                        core::PredicateId* original,
                        std::vector<std::uint32_t>* pattern) const {
  auto it = origins_.find(simplified);
  if (it == origins_.end()) return false;
  *original = it->second.original;
  *pattern = it->second.pattern;
  return true;
}

}  // namespace rewrite
}  // namespace nuchase
