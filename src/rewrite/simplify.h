#ifndef NUCHASE_REWRITE_SIMPLIFY_H_
#define NUCHASE_REWRITE_SIMPLIFY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/atom.h"
#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"
#include "util/status.h"

namespace nuchase {
namespace rewrite {

/// The equality pattern id(t̄) of a tuple (Section 7): id(x,y,x,z,y) =
/// (1,2,1,3,2), numbering terms by first occurrence.
std::vector<std::uint32_t> IdPattern(const std::vector<core::Term>& tuple);

/// Implements the simplification technique of Section 7: simple(α),
/// simple(D) and simple(Σ) for linear Σ. New predicates R_id(t̄) are
/// interned as "R[1,2,1]" and the registry remembers their origin so the
/// UCQ decider of Theorem 7.7 can translate simplified predicates back to
/// (original predicate, pattern) pairs.
class Simplifier {
 public:
  explicit Simplifier(core::SymbolTable* symbols) : symbols_(symbols) {}

  /// simple(α): R_id(t̄)(unique(t̄)).
  core::Atom SimplifyAtom(const core::Atom& atom);

  /// simple(D): the simplification of every fact.
  core::Database SimplifyDatabase(const core::Database& db);

  /// simple(Σ): all simplifications of all TGDs induced by
  /// specializations of their body tuples (Definition 7.2). Structural
  /// duplicates within one TGD's specializations are removed. Fails if Σ
  /// is not linear. The size of the result is at most ar(Σ)^ar(Σ) per
  /// TGD.
  util::StatusOr<tgd::TgdSet> SimplifyTgds(const tgd::TgdSet& tgds);

  /// Origin of a simplified predicate: the original predicate and the
  /// equality pattern (1-based ids per position). Returns false for
  /// predicates this simplifier did not create.
  bool Origin(core::PredicateId simplified, core::PredicateId* original,
              std::vector<std::uint32_t>* pattern) const;

 private:
  struct OriginInfo {
    core::PredicateId original;
    std::vector<std::uint32_t> pattern;
  };

  core::PredicateId InternSimplifiedPredicate(
      core::PredicateId original, const std::vector<std::uint32_t>& pattern);

  /// Enumerates all specializations f of the distinct variables of `vars`
  /// (in first-occurrence order): f(u1)=u1, f(ui) ∈ image(u1..u_{i-1}) ∪
  /// {ui}.
  static void EnumerateSpecializations(
      const std::vector<core::Term>& distinct_vars,
      const std::function<void(
          const std::unordered_map<core::Term, core::Term>&)>& cb);

  core::SymbolTable* symbols_;
  std::unordered_map<core::PredicateId, OriginInfo> origins_;
};

}  // namespace rewrite
}  // namespace nuchase

#endif  // NUCHASE_REWRITE_SIMPLIFY_H_
