#include "rewrite/linearize.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <unordered_set>

namespace nuchase {
namespace rewrite {

using core::Atom;
using core::Term;
using saturation::CAtom;
using saturation::CAtomSet;
using util::Status;
using util::StatusOr;

std::string SigmaType::Name(const core::SymbolTable& symbols) const {
  std::string out = "[";
  out += guard.ToString(symbols);
  out += '|';
  bool first = true;
  for (const CAtom& a : others) {
    if (!first) out += ',';
    first = false;
    out += a.ToString(symbols);
  }
  out += ']';
  return out;
}

namespace {

/// Maps the terms of a tuple to integers by first occurrence (the paper's
/// canonical Σ-type numbering: t1 = 1, ti ≤ max + 1).
std::unordered_map<Term, std::uint32_t> FirstOccurrenceIds(
    const std::vector<Term>& tuple) {
  std::unordered_map<Term, std::uint32_t> ids;
  for (Term t : tuple) {
    ids.emplace(t, static_cast<std::uint32_t>(ids.size() + 1));
  }
  return ids;
}

/// Renames a CAtom through an int→int map.
CAtom RenameCAtom(const CAtom& atom,
                  const std::unordered_map<std::uint32_t, std::uint32_t>&
                      renaming) {
  CAtom out = atom;
  for (std::uint32_t& t : out.args) t = renaming.at(t);
  return out;
}

/// Bookkeeping for interning [τ] predicates.
class TypeRegistry {
 public:
  TypeRegistry(core::SymbolTable* symbols, Linearized* out)
      : symbols_(symbols), out_(out) {}

  /// Interns τ; appends it to the worklist when new. Returns the [τ]
  /// predicate.
  core::PredicateId Intern(const SigmaType& type) {
    std::string name = type.Name(*symbols_);
    auto it = by_name_.find(name);
    if (it != by_name_.end()) return it->second;
    auto pred = symbols_->InternPredicate(
        name, static_cast<std::uint32_t>(type.guard.args.size()));
    assert(pred.ok());
    by_name_.emplace(std::move(name), *pred);
    out_->types.emplace(*pred, type);
    worklist_.push_back(*pred);
    return *pred;
  }

  bool HasPending() const { return !worklist_.empty(); }
  core::PredicateId PopPending() {
    core::PredicateId p = worklist_.front();
    worklist_.pop_front();
    return p;
  }
  std::size_t size() const { return by_name_.size(); }

 private:
  core::SymbolTable* symbols_;
  Linearized* out_;
  std::unordered_map<std::string, core::PredicateId> by_name_;
  std::deque<core::PredicateId> worklist_;
};

}  // namespace

StatusOr<Linearized> Linearize(const core::Database& db,
                               const tgd::TgdSet& tgds,
                               core::SymbolTable* symbols,
                               const LinearizeOptions& options) {
  for (const tgd::Tgd& rule : tgds.tgds()) {
    if (!rule.IsGuarded()) {
      return Status::FailedPrecondition(
          "linearization requires a guarded TGD set");
    }
  }
  auto oracle = saturation::TypeOracle::Create(*symbols, tgds,
                                               options.oracle);
  if (!oracle.ok()) return oracle.status();

  Linearized out;
  TypeRegistry registry(symbols, &out);

  // --- lin(D): the type of every database atom, from complete(D, Σ). ---
  auto completed = oracle->Complete(db.facts());
  if (!completed.ok()) return completed.status();

  for (const Atom& fact : db.facts()) {
    std::unordered_map<Term, std::uint32_t> ids =
        FirstOccurrenceIds(fact.args);
    SigmaType type;
    type.guard.predicate = fact.predicate;
    for (Term t : fact.args) type.guard.args.push_back(ids.at(t));
    for (const Atom& beta : *completed) {
      bool inside = true;
      for (Term t : beta.args) {
        if (!ids.count(t)) {
          inside = false;
          break;
        }
      }
      if (!inside) continue;
      CAtom mapped;
      mapped.predicate = beta.predicate;
      for (Term t : beta.args) mapped.args.push_back(ids.at(t));
      if (mapped == type.guard) continue;
      type.others.insert(std::move(mapped));
    }
    core::PredicateId tau = registry.Intern(type);
    Status st = out.database.AddFact(Atom(tau, fact.args));
    if (!st.ok()) return st;
  }

  // --- Reachable fragment of lin(Σ): worklist over Σ-types. ---
  while (registry.HasPending()) {
    if (registry.size() > options.max_types) {
      return Status::ResourceExhausted("linearization type budget exceeded");
    }
    core::PredicateId tau_pred = registry.PopPending();
    // Copy: out.types may rehash while we emit child types.
    SigmaType tau = out.types.at(tau_pred);
    CAtomSet tau_atoms = tau.others;
    tau_atoms.insert(tau.guard);
    std::uint32_t num_terms = 0;
    for (std::uint32_t t : tau.guard.args) num_terms = std::max(num_terms, t);

    for (const tgd::Tgd& rule : tgds.tgds()) {
      const Atom& guard = rule.guard();
      if (guard.predicate != tau.guard.predicate) continue;
      // The homomorphism h: body(σ) → atoms(τ) with h(guard(σ)) =
      // guard(τ) is determined by aligning the guard (it contains every
      // body variable); it exists iff the alignment is consistent and
      // every side atom lands inside atoms(τ).
      std::unordered_map<Term, std::uint32_t> h;
      bool consistent = true;
      for (std::size_t i = 0; i < guard.args.size(); ++i) {
        auto [it, fresh] = h.emplace(guard.args[i], tau.guard.args[i]);
        if (!fresh && it->second != tau.guard.args[i]) {
          consistent = false;
          break;
        }
      }
      if (!consistent) continue;
      bool sides_ok = true;
      for (std::size_t b = 0;
           b < rule.body().size() && sides_ok; ++b) {
        if (static_cast<int>(b) == rule.guard_index()) continue;
        CAtom side;
        side.predicate = rule.body()[b].predicate;
        for (Term v : rule.body()[b].args) side.args.push_back(h.at(v));
        if (!tau_atoms.count(side)) sides_ok = false;
      }
      if (!sides_ok) continue;

      // Extend h with fresh integers for the existential variables
      // (the paper uses ar(Σ)+i; any integers above dom(τ) work).
      std::unordered_map<Term, std::uint32_t> extended = h;
      std::uint32_t next_fresh = num_terms + 1;
      for (Term z : rule.existential()) extended.emplace(z, next_fresh++);

      // Small instance I = {α_1, ..., α_m} ∪ atoms(τ).
      std::vector<CAtom> heads;
      CAtomSet small_instance = tau_atoms;
      for (const Atom& head_atom : rule.head()) {
        CAtom a;
        a.predicate = head_atom.predicate;
        for (Term v : head_atom.args) a.args.push_back(extended.at(v));
        small_instance.insert(a);
        heads.push_back(std::move(a));
      }
      auto complete_small = oracle->CompleteCanonical(small_instance);
      if (!complete_small.ok()) return complete_small.status();

      // Child types τ_i: the completion restricted to dom(α_i), renamed
      // canonically (the paper's ρ).
      std::vector<Atom> lin_head;
      for (std::size_t i = 0; i < heads.size(); ++i) {
        const CAtom& alpha = heads[i];
        std::unordered_set<std::uint32_t> alpha_dom(alpha.args.begin(),
                                                    alpha.args.end());
        std::unordered_map<std::uint32_t, std::uint32_t> rho;
        for (std::uint32_t t : alpha.args) {
          rho.emplace(t, static_cast<std::uint32_t>(rho.size() + 1));
        }
        SigmaType child;
        child.guard = RenameCAtom(alpha, rho);
        for (const CAtom& beta : *complete_small) {
          bool inside = true;
          for (std::uint32_t t : beta.args) {
            if (!alpha_dom.count(t)) {
              inside = false;
              break;
            }
          }
          if (!inside) continue;
          CAtom renamed = RenameCAtom(beta, rho);
          if (renamed == child.guard) continue;
          child.others.insert(std::move(renamed));
        }
        core::PredicateId child_pred = registry.Intern(child);
        lin_head.emplace_back(child_pred, rule.head()[i].args);
      }

      std::vector<Atom> lin_body{Atom(tau_pred, guard.args)};
      auto lin_rule =
          tgd::Tgd::Create(std::move(lin_body), std::move(lin_head));
      if (!lin_rule.ok()) return lin_rule.status();
      out.tgds.Add(std::move(*lin_rule));
    }
  }

  out.num_types = out.types.size();
  return out;
}

StatusOr<GSimplified> GSimplify(const core::Database& db,
                                const tgd::TgdSet& tgds,
                                core::SymbolTable* symbols,
                                const LinearizeOptions& options) {
  auto lin = Linearize(db, tgds, symbols, options);
  if (!lin.ok()) return lin.status();

  Simplifier simplifier(symbols);
  auto simple_tgds = simplifier.SimplifyTgds(lin->tgds);
  if (!simple_tgds.ok()) return simple_tgds.status();

  GSimplified out;
  out.database = simplifier.SimplifyDatabase(lin->database);
  out.tgds = std::move(*simple_tgds);
  out.num_types = lin->num_types;
  out.num_linear_tgds = lin->tgds.size();
  return out;
}

}  // namespace rewrite
}  // namespace nuchase
