#include "util/thread_pool.h"

namespace nuchase {
namespace util {

ThreadPool::ThreadPool(unsigned workers)
    : workers_(workers == 0 ? 1 : workers) {
  helpers_.reserve(workers_ - 1);
  for (unsigned i = 1; i < workers_; ++i) {
    helpers_.emplace_back([this, i]() { HelperLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& helper : helpers_) helper.join();
}

void ThreadPool::Run(const std::function<void(unsigned)>& fn) {
  if (workers_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = &fn;
    outstanding_ = workers_ - 1;
    ++generation_;
  }
  work_cv_.notify_all();
  fn(0);
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this]() { return outstanding_ == 0; });
  job_ = nullptr;
}

void ThreadPool::HelperLoop(unsigned index) {
  std::uint64_t seen = 0;
  while (true) {
    const std::function<void(unsigned)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&]() {
        return shutdown_ || generation_ != seen;
      });
      if (shutdown_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(index);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace util
}  // namespace nuchase
