#ifndef NUCHASE_UTIL_STATUS_H_
#define NUCHASE_UTIL_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace nuchase {
namespace util {

/// Error category for Status. Mirrors the small set of failure modes the
/// library can produce; library code never throws.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< Malformed input (parser errors, bad TGDs, ...).
  kNotFound,          ///< Lookup of a missing symbol/predicate.
  kResourceExhausted, ///< A chase/oracle budget was exceeded.
  kFailedPrecondition,///< API misuse (e.g. linearizing a non-guarded set).
  kInternal,          ///< Invariant violation; indicates a library bug.
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Value-semantic error type, in the style of Arrow/RocksDB status objects.
/// All fallible public APIs return Status or StatusOr<T>.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or a non-OK Status. Accessing the value of a
/// failed StatusOr aborts (assert), matching the no-exceptions policy.
template <typename T>
class StatusOr {
 public:
  /// Implicit construction from a value (OK).
  StatusOr(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit construction from a non-OK status.
  StatusOr(Status status) : status_(std::move(status)) {
    assert(!status_.ok() && "StatusOr constructed from OK status w/o value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok() && "value() called on failed StatusOr");
    return *value_;
  }
  T& value() & {
    assert(ok() && "value() called on failed StatusOr");
    return *value_;
  }
  T&& value() && {
    assert(ok() && "value() called on failed StatusOr");
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace util
}  // namespace nuchase

/// Propagates a non-OK Status from an expression, RocksDB-style.
#define NUCHASE_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::nuchase::util::Status _st = (expr);            \
    if (!_st.ok()) return _st;                       \
  } while (0)

#endif  // NUCHASE_UTIL_STATUS_H_
