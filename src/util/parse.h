#ifndef NUCHASE_UTIL_PARSE_H_
#define NUCHASE_UTIL_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace nuchase {
namespace util {

/// Strict parse of a base-10 unsigned integer: the whole string must be
/// digits and the value must be at most `max`. Anything else — empty
/// string, leading whitespace or sign, trailing garbage, overflow —
/// fails. The digit-first check rejects the whitespace/sign skipping
/// strtoull performs on its own, and the `errno = 0` reset makes the
/// ERANGE test immune to a stale value left by an earlier call (bare
/// strtoul callers get both wrong: " 4" parses and a prior ERANGE leaks
/// into this parse). One definition, shared by every numeric surface —
/// CLI flags and environment variables alike — so "what counts as a
/// number" cannot drift between them.
inline bool ParseCount(const char* value, unsigned long long max,
                       unsigned long long* out) {
  if (value == nullptr ||
      !std::isdigit(static_cast<unsigned char>(*value))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(value, &end, 10);
  if (*end != '\0' || errno == ERANGE || n > max) return false;
  *out = n;
  return true;
}

}  // namespace util
}  // namespace nuchase

#endif  // NUCHASE_UTIL_PARSE_H_
