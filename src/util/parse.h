#ifndef NUCHASE_UTIL_PARSE_H_
#define NUCHASE_UTIL_PARSE_H_

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace nuchase {
namespace util {

/// Strict parse of a base-10 unsigned integer: the whole string must be
/// digits and the value must be at most `max`. Anything else — empty
/// string, leading whitespace or sign, trailing garbage, overflow —
/// fails. The digit-first check rejects the whitespace/sign skipping
/// strtoull performs on its own, and the `errno = 0` reset makes the
/// ERANGE test immune to a stale value left by an earlier call (bare
/// strtoul callers get both wrong: " 4" parses and a prior ERANGE leaks
/// into this parse). One definition, shared by every numeric surface —
/// CLI flags and environment variables alike — so "what counts as a
/// number" cannot drift between them.
inline bool ParseCount(const char* value, unsigned long long max,
                       unsigned long long* out) {
  if (value == nullptr ||
      !std::isdigit(static_cast<unsigned char>(*value))) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  unsigned long long n = std::strtoull(value, &end, 10);
  if (*end != '\0' || errno == ERANGE || n > max) return false;
  *out = n;
  return true;
}

/// ParseCount for a command-line flag, with the one shared rejection
/// message every binary prints: strict parse into [min, max], and on
/// any failure — garbage, sign, whitespace, trailing suffix, overflow,
/// out of range — a loud
///   "<flag> expects an integer in [<min>, <max>], got '<value>'"
/// on stderr. Callers return usage (exit 2) on false. One helper for
/// every strict numeric flag in every tool (nuchase, nuchase_lint,
/// nuchase_server, nuchase_loadgen), so what counts as a number — and
/// what a rejection looks like — cannot drift between binaries: a flag
/// that hand-rolls its parse is exactly how "--port=80x" comes to be
/// accepted by one tool and rejected by its siblings.
inline bool ParseCountFlag(const char* flag, const char* value,
                           unsigned long long min, unsigned long long max,
                           unsigned long long* out) {
  unsigned long long n = 0;
  if (!ParseCount(value, max, &n) || n < min) {
    std::fprintf(stderr, "%s expects an integer in [%llu, %llu], got "
                 "'%s'\n", flag, min, max, value == nullptr ? "" : value);
    return false;
  }
  *out = n;
  return true;
}

}  // namespace util
}  // namespace nuchase

#endif  // NUCHASE_UTIL_PARSE_H_
