#include "util/table.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace nuchase {
namespace util {

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers)) {}

void Table::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::ToString() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  os << "== " << title_ << " ==\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) os << "  ";
      if (c == 0) {
        os << cells[c] << std::string(widths[c] - cells[c].size(), ' ');
      } else {
        os << std::string(widths[c] - cells[c].size(), ' ') << cells[c];
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c > 0 ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

void Table::Print(std::ostream& os) const { os << ToString(); }

std::string FormatCount(double value) {
  char buf[64];
  if (value < 1e7) {
    std::snprintf(buf, sizeof(buf), "%.0f", value);
  } else {
    std::snprintf(buf, sizeof(buf), "~%.3g", value);
  }
  return buf;
}

}  // namespace util
}  // namespace nuchase
