#ifndef NUCHASE_UTIL_THREAD_POOL_H_
#define NUCHASE_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nuchase {
namespace util {

/// A fixed-size fork/join worker pool for data-parallel regions — the
/// execution substrate of the parallel trigger engine
/// (chase::ChaseOptions::num_threads).
///
/// The pool owns `workers() - 1` helper threads; the thread calling
/// Run() participates as worker 0, so a pool of size N applies N-way
/// parallelism with N-1 spawned threads (and a pool of size 1 spawns
/// nothing and degenerates to a plain call). Threads are spawned once,
/// in the constructor, and parked on a condition variable between
/// regions, so per-region dispatch costs one lock round-trip rather
/// than a thread spawn — cheap enough to run once per chase round.
///
/// Concurrency contract:
///   - Run() blocks until every worker has returned from `fn`; the
///     return of Run() *happens-after* all work done inside the region,
///     so results written to per-worker slots may be read unsynchronized
///     by the caller afterwards.
///   - Run() may be called any number of times, but only from one
///     thread at a time (the pool is a fork/join primitive, not a task
///     queue).
///   - `fn` is invoked exactly once per worker with the worker index in
///     [0, workers()); it must not call Run() reentrantly and must not
///     throw (the engine's work functions are noexcept by construction).
///   - The destructor joins the helper threads; it must not race a
///     live region.
class ThreadPool {
 public:
  /// Creates a pool of `workers` total workers (clamped to >= 1).
  /// `workers - 1` helper threads are spawned immediately.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total workers, including the caller of Run(). Always >= 1.
  unsigned workers() const { return workers_; }

  /// Runs `fn(w)` for every worker index w in [0, workers()), in
  /// parallel, and returns once all of them have finished. The caller
  /// executes worker 0 itself.
  void Run(const std::function<void(unsigned)>& fn);

 private:
  void HelperLoop(unsigned index);

  unsigned workers_;
  std::vector<std::thread> helpers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // helpers wait here for a region
  std::condition_variable done_cv_;   // Run() waits here for the join
  const std::function<void(unsigned)>* job_ = nullptr;  // guarded by mu_
  std::uint64_t generation_ = 0;  // bumped once per region
  unsigned outstanding_ = 0;      // helpers still inside the region
  bool shutdown_ = false;
};

/// Runs `fn(worker, begin, end)` over [0, count) split into dynamically
/// claimed contiguous chunks — the fork/join idiom shared by the
/// chase engine's collect and apply stages and the storage layer's
/// batched insert. Chunks are at least `min_chunk` items (and sized so
/// each worker claims ~8 on an even split, amortizing the atomic).
/// With a null pool or a single worker the whole range runs inline on
/// the caller as fn(0, 0, count), so callers keep one code path for
/// every thread count.
///
/// Determinism contract: which worker runs which chunk (and in what
/// interleaving) is scheduling-dependent, so `fn` must write only to
/// per-item or per-worker slots; any order-sensitive reduction belongs
/// after the region returns.
template <typename Fn>
inline void ParallelChunks(ThreadPool* pool, std::size_t count,
                           std::size_t min_chunk, Fn&& fn) {
  if (count == 0) return;
  if (pool == nullptr || pool->workers() <= 1) {
    fn(0u, static_cast<std::size_t>(0), count);
    return;
  }
  const std::size_t chunk = std::max<std::size_t>(
      std::max<std::size_t>(1, min_chunk),
      count / (static_cast<std::size_t>(pool->workers()) * 8));
  std::atomic<std::size_t> next{0};
  pool->Run([&](unsigned w) {
    while (true) {
      const std::size_t begin =
          next.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      fn(w, begin, std::min(begin + chunk, count));
    }
  });
}

}  // namespace util
}  // namespace nuchase

#endif  // NUCHASE_UTIL_THREAD_POOL_H_
