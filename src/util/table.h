#ifndef NUCHASE_UTIL_TABLE_H_
#define NUCHASE_UTIL_TABLE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nuchase {
namespace util {

/// Minimal fixed-column ASCII table used by the benchmark harness to print
/// the tables recorded in EXPERIMENTS.md. Columns are right-aligned except
/// the first, which is left-aligned (row label).
class Table {
 public:
  /// Creates a table with the given title and column headers.
  Table(std::string title, std::vector<std::string> headers);

  /// Appends a row; the number of cells must equal the number of headers.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table (title, header rule, rows) to a string.
  std::string ToString() const;

  /// Writes ToString() to the stream.
  void Print(std::ostream& os) const;

  std::size_t num_rows() const { return rows_.size(); }

  /// Structured access, used by the bench harness to re-emit recorded
  /// tables as JSON.
  const std::string& title() const { return title_; }
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& rows() const {
    return rows_;
  }

 private:
  std::string title_;
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a count that may be huge; switches to scientific-ish "~1.2e9"
/// formatting above 10^7 so tables stay readable.
std::string FormatCount(double value);

}  // namespace util
}  // namespace nuchase

#endif  // NUCHASE_UTIL_TABLE_H_
