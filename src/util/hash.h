#ifndef NUCHASE_UTIL_HASH_H_
#define NUCHASE_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace nuchase {
namespace util {

/// Combines a hash value into a seed (boost::hash_combine recipe with a
/// 64-bit golden-ratio constant).
inline void HashCombine(std::size_t* seed, std::size_t value) {
  *seed ^= value + 0x9e3779b97f4a7c15ULL + (*seed << 6) + (*seed >> 2);
}

/// Full-avalanche 64-bit mixer (the splitmix64 finalizer): every input
/// bit affects every output bit, including the low bits that
/// power-of-two open-addressing tables index by.
inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

/// Hashes a contiguous range of integral values.
template <typename It>
std::size_t HashRange(It begin, It end, std::size_t seed = 0) {
  for (It it = begin; it != end; ++it) {
    HashCombine(&seed, std::hash<std::uint64_t>{}(
                           static_cast<std::uint64_t>(*it)));
  }
  return seed;
}

/// Hash functor for vectors of integral ids; used to key interning tables.
template <typename T>
struct VectorHash {
  std::size_t operator()(const std::vector<T>& v) const {
    return HashRange(v.begin(), v.end(), v.size());
  }
};

}  // namespace util
}  // namespace nuchase

#endif  // NUCHASE_UTIL_HASH_H_
