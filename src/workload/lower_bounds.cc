#include "workload/lower_bounds.h"

#include <cassert>
#include <cmath>

namespace nuchase {
namespace workload {

using core::Atom;
using core::Term;

namespace {

/// Small helper collecting the boilerplate of building parameterized
/// TGDs: interned predicates, variables "x1", ..., and checked Tgd
/// construction.
class Builder {
 public:
  explicit Builder(core::SymbolTable* symbols) : symbols_(symbols) {}

  core::PredicateId Pred(const std::string& name, std::uint32_t arity) {
    auto p = symbols_->InternPredicate(name, arity);
    assert(p.ok() && "workload predicate arity clash; use a fresh "
                     "SymbolTable per workload");
    return *p;
  }

  Term Var(const std::string& name) {
    return symbols_->InternVariable(name);
  }

  void AddRule(tgd::TgdSet* out, std::vector<Atom> body,
               std::vector<Atom> head) {
    auto rule = tgd::Tgd::Create(std::move(body), std::move(head));
    assert(rule.ok());
    out->Add(std::move(*rule));
  }

 private:
  core::SymbolTable* symbols_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Theorem 6.5 (SL).
// ---------------------------------------------------------------------------

Workload MakeSlLowerBound(core::SymbolTable* symbols, std::uint64_t ell,
                          std::uint32_t n, std::uint32_t m) {
  Builder b(symbols);
  Workload out;
  out.name = "sl-lower-bound(ell=" + std::to_string(ell) +
             ",n=" + std::to_string(n) + ",m=" + std::to_string(m) + ")";
  std::string tag = "_" + std::to_string(n) + "_" + std::to_string(m);

  core::PredicateId p0 = b.Pred("P0" + tag, 1);
  std::vector<core::PredicateId> r(n + 1);
  for (std::uint32_t i = 1; i <= n; ++i) {
    r[i] = b.Pred("R" + std::to_string(i) + tag, m);
  }

  // D_ℓ = { P0(c_1), ..., P0(c_ℓ) }.
  for (std::uint64_t i = 1; i <= ell; ++i) {
    util::Status st = out.database.AddFact(
        symbols, "P0" + tag, {"c" + std::to_string(i)});
    assert(st.ok());
    (void)st;
  }

  // Σ_start: P0(x) → ∃y1..ym P0(x), R1(y1, ..., ym).
  {
    Term x = b.Var("x" + tag);
    std::vector<Term> ys;
    for (std::uint32_t j = 1; j <= m; ++j) {
      ys.push_back(b.Var("y" + std::to_string(j) + tag));
    }
    b.AddRule(&out.tgds, {Atom(p0, {x})},
              {Atom(p0, {x}), Atom(r[1], ys)});
  }

  for (std::uint32_t i = 1; i <= n; ++i) {
    std::string itag = "_i" + std::to_string(i) + tag;
    std::vector<Term> xs;
    for (std::uint32_t j = 1; j <= m; ++j) {
      xs.push_back(b.Var("x" + std::to_string(j) + itag));
    }
    // Σ∀_i: for each j ∈ [m], the transposition (1 j) and the
    // "assign first component := x_j" rule.
    for (std::uint32_t j = 1; j <= m; ++j) {
      std::vector<Term> swapped = xs;
      std::swap(swapped[0], swapped[j - 1]);
      b.AddRule(&out.tgds, {Atom(r[i], xs)}, {Atom(r[i], swapped)});

      std::vector<Term> assigned = xs;
      assigned[0] = xs[j - 1];
      b.AddRule(&out.tgds, {Atom(r[i], xs)}, {Atom(r[i], assigned)});
    }
    // Σ∃_i: R_i(x̄) → ∃z̄ R_i(x̄), R_{i+1}(z̄)   (for i < n).
    if (i < n) {
      std::vector<Term> zs;
      for (std::uint32_t j = 1; j <= m; ++j) {
        zs.push_back(b.Var("z" + std::to_string(j) + itag));
      }
      b.AddRule(&out.tgds, {Atom(r[i], xs)},
                {Atom(r[i], xs), Atom(r[i + 1], zs)});
    }
  }
  return out;
}

double SlLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                         std::uint32_t m) {
  return static_cast<double>(ell) *
         std::pow(static_cast<double>(m),
                  static_cast<double>(n) * static_cast<double>(m));
}

// ---------------------------------------------------------------------------
// Theorem 7.6 (L).
// ---------------------------------------------------------------------------

Workload MakeLinearLowerBound(core::SymbolTable* symbols, std::uint64_t ell,
                              std::uint32_t n, std::uint32_t m) {
  Builder b(symbols);
  Workload out;
  out.name = "l-lower-bound(ell=" + std::to_string(ell) +
             ",n=" + std::to_string(n) + ",m=" + std::to_string(m) + ")";
  std::string tag = "_" + std::to_string(n) + "_" + std::to_string(m);
  const std::uint32_t arity = m + 3;

  core::PredicateId p0 = b.Pred("P0" + tag, 1);
  std::vector<core::PredicateId> r(n + 1);
  for (std::uint32_t i = 1; i <= n; ++i) {
    r[i] = b.Pred("R" + std::to_string(i) + tag, arity);
  }

  for (std::uint64_t i = 1; i <= ell; ++i) {
    util::Status st = out.database.AddFact(
        symbols, "P0" + tag, {"c" + std::to_string(i)});
    assert(st.ok());
    (void)st;
  }

  // Σ_start: P0(x) → ∃y∃z P0(x), R1(y^m, y, z, y).
  {
    Term x = b.Var("x" + tag);
    Term y = b.Var("y" + tag);
    Term z = b.Var("z" + tag);
    std::vector<Term> args(m, y);
    args.push_back(y);
    args.push_back(z);
    args.push_back(y);
    b.AddRule(&out.tgds, {Atom(p0, {x})},
              {Atom(p0, {x}), Atom(r[1], args)});
  }

  for (std::uint32_t i = 1; i <= n; ++i) {
    std::string itag = "_i" + std::to_string(i) + tag;
    // Σ∀_i: for each j ∈ {0, ..., m−1}:
    //   R_i(x1..x_{m−j−1}, y, z^j, y, z, u) →
    //     ∃v∃w R_i(body args),
    //          R_i(x1..x_{m−j−1}, z, y^j, y, z, v),
    //          R_i(x1..x_{m−j−1}, z, y^j, y, z, w).
    for (std::uint32_t j = 0; j < m; ++j) {
      std::string jtag = "_j" + std::to_string(j) + itag;
      Term y = b.Var("y" + jtag);
      Term z = b.Var("z" + jtag);
      Term u = b.Var("u" + jtag);
      Term v = b.Var("v" + jtag);
      Term w = b.Var("w" + jtag);
      std::vector<Term> prefix;  // x1 .. x_{m−j−1}
      for (std::uint32_t k = 1; k + j + 1 <= m; ++k) {
        prefix.push_back(b.Var("x" + std::to_string(k) + jtag));
      }
      auto digits = [&](Term first, Term rest) {
        // digits: prefix, first, rest^j  (total m digits)
        std::vector<Term> d = prefix;
        d.push_back(first);
        for (std::uint32_t k = 0; k < j; ++k) d.push_back(rest);
        return d;
      };
      std::vector<Term> body_args = digits(y, z);
      body_args.push_back(y);
      body_args.push_back(z);
      body_args.push_back(u);

      auto child = [&](Term id) {
        std::vector<Term> a = digits(z, y);
        a.push_back(y);
        a.push_back(z);
        a.push_back(id);
        return a;
      };
      b.AddRule(&out.tgds, {Atom(r[i], body_args)},
                {Atom(r[i], body_args), Atom(r[i], child(v)),
                 Atom(r[i], child(w))});
    }
    // Σ∃_i: R_i(x^m, y, x, z) → ∃v∃w R_i(x^m, y, x, z),
    //                                R_{i+1}(v^m, v, w, v).
    if (i < n) {
      Term x = b.Var("xe" + itag);
      Term y = b.Var("ye" + itag);
      Term z = b.Var("ze" + itag);
      Term v = b.Var("ve" + itag);
      Term w = b.Var("we" + itag);
      std::vector<Term> body_args(m, x);
      body_args.push_back(y);
      body_args.push_back(x);
      body_args.push_back(z);
      std::vector<Term> head_args(m, v);
      head_args.push_back(v);
      head_args.push_back(w);
      head_args.push_back(v);
      b.AddRule(&out.tgds, {Atom(r[i], body_args)},
                {Atom(r[i], body_args), Atom(r[i + 1], head_args)});
    }
  }
  return out;
}

double LinearLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                             std::uint32_t m) {
  return static_cast<double>(ell) *
         std::exp2(static_cast<double>(n) *
                   (std::exp2(static_cast<double>(m)) - 1));
}

// ---------------------------------------------------------------------------
// Theorem 8.4 (G).
// ---------------------------------------------------------------------------

Workload MakeGuardedLowerBound(core::SymbolTable* symbols,
                               std::uint64_t ell, std::uint32_t n,
                               std::uint32_t m) {
  Builder b(symbols);
  Workload out;
  out.name = "g-lower-bound(ell=" + std::to_string(ell) +
             ",n=" + std::to_string(n) + ",m=" + std::to_string(m) + ")";
  std::string tag = "_" + std::to_string(n) + "_" + std::to_string(m);

  core::PredicateId node = b.Pred("Node" + tag, 4);
  core::PredicateId root = b.Pred("Root" + tag, 1);
  core::PredicateId nonroot = b.Pred("NonRoot" + tag, 1);
  core::PredicateId newroot = b.Pred("NewRoot" + tag, 1);
  core::PredicateId did = b.Pred("Did" + tag, 4 + m);
  core::PredicateId succ = b.Pred("Succ" + tag, 4 + 2 * m);
  core::PredicateId depthp = b.Pred("Depth" + tag, m + 2);
  core::PredicateId nonmaxs = b.Pred("NonMaxStratum" + tag, 1);
  core::PredicateId nonmaxd = b.Pred("NonMaxDepth" + tag, 1);
  core::PredicateId dpivot = b.Pred("DPivot" + tag, m + 1);
  core::PredicateId dchange = b.Pred("DChange" + tag, m + 1);
  core::PredicateId dcopy = b.Pred("DCopy" + tag, m + 1);
  std::vector<core::PredicateId> s(n + 1), spivot(n + 1), schange(n + 1),
      scopy(n + 1);
  for (std::uint32_t i = 1; i <= n; ++i) {
    std::string si = std::to_string(i);
    s[i] = b.Pred("S" + si + tag, 2);
    spivot[i] = b.Pred("SPivot" + si + tag, 1);
    schange[i] = b.Pred("SChange" + si + tag, 1);
    scopy[i] = b.Pred("SCopy" + si + tag, 1);
  }

  // D_ℓ = { Node(c_i, c_i, 0, 1) }.
  for (std::uint64_t i = 1; i <= ell; ++i) {
    util::Status st =
        out.database.AddFact(symbols, "Node" + tag,
                             {"c" + std::to_string(i),
                              "c" + std::to_string(i), "zero", "one"});
    assert(st.ok());
    (void)st;
  }

  Term x = b.Var("x" + tag), y = b.Var("y" + tag), z = b.Var("z" + tag),
       o = b.Var("o" + tag), w = b.Var("w" + tag), w2 = b.Var("w2" + tag);
  std::vector<Term> ws, ws2;
  for (std::uint32_t i = 1; i <= m; ++i) {
    ws.push_back(b.Var("wa" + std::to_string(i) + tag));
    ws2.push_back(b.Var("wb" + std::to_string(i) + tag));
  }

  auto cat = [](std::vector<Term> a, const std::vector<Term>& c) {
    a.insert(a.end(), c.begin(), c.end());
    return a;
  };

  // Root initialization: Node(x,x,z,o) → Root(x), S_1(x,z), ..., S_n(x,z).
  {
    std::vector<Atom> head{Atom(root, {x})};
    for (std::uint32_t i = 1; i <= n; ++i) {
      head.push_back(Atom(s[i], {x, z}));
    }
    b.AddRule(&out.tgds, {Atom(node, {x, x, z, o})}, std::move(head));
  }

  // Digit-id zero: Node(x,y,z,o) → Did(x,y,z,o,z^m).
  {
    std::vector<Term> args{x, y, z, o};
    for (std::uint32_t i = 0; i < m; ++i) args.push_back(z);
    b.AddRule(&out.tgds, {Atom(node, {x, y, z, o})},
              {Atom(did, args)});
  }
  // All other digit-ids: flip one z to o.
  for (std::uint32_t i = 0; i < m; ++i) {
    std::vector<Term> body_args{x, y, z, o};
    std::vector<Term> head_args{x, y, z, o};
    for (std::uint32_t k = 0; k < m; ++k) {
      body_args.push_back(k == i ? z : ws[k]);
      head_args.push_back(k == i ? o : ws[k]);
    }
    b.AddRule(&out.tgds, {Atom(did, body_args)}, {Atom(did, head_args)});
  }

  // Root depth counter is all-zero:
  //   Did(x,y,z,o,w̄), Root(y) → Depth(y,w̄,z).
  b.AddRule(&out.tgds,
            {Atom(did, cat({x, y, z, o}, ws)), Atom(root, {y})},
            {Atom(depthp, cat(cat({y}, ws), {z}))});

  // Successor over digit-ids: for i ∈ [m]:
  //   Did(x,y,z,o,w1..w_{i−1},z,o^{m−i}) →
  //     Succ(x,y,z,o, w1..w_{i−1},z,o^{m−i}, w1..w_{i−1},o,z^{m−i}).
  for (std::uint32_t i = 1; i <= m; ++i) {
    std::vector<Term> low, high;
    for (std::uint32_t k = 1; k <= m; ++k) {
      if (k < i) {
        low.push_back(ws[k - 1]);
        high.push_back(ws[k - 1]);
      } else if (k == i) {
        low.push_back(z);
        high.push_back(o);
      } else {
        low.push_back(o);
        high.push_back(z);
      }
    }
    b.AddRule(&out.tgds, {Atom(did, cat({x, y, z, o}, low))},
              {Atom(succ, cat(cat({x, y, z, o}, low), high))});
  }

  // Complement markers:
  for (std::uint32_t i = 1; i <= n; ++i) {
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(s[i], {y, z})},
              {Atom(nonmaxs, {y})});
  }
  // The paper writes Depth(x,w̄,z) → NonMaxDepth(x) with z implicitly the
  // constant 0; a runnable constant-free encoding must anchor z (and o)
  // through a guard atom whose positions carry them, else z unifies with
  // 1 as well, NonMaxDepth never expires, and the tree is infinite.
  b.AddRule(&out.tgds,
            {Atom(did, cat({x, y, z, o}, ws)),
             Atom(depthp, cat(cat({y}, ws), {z}))},
            {Atom(nonmaxd, {y})});

  // Children: Node(x,y,z,o), NonMaxDepth(y) →
  //   ∃w∃w2 Node(y,w,z,o), NonRoot(w), Node(y,w2,z,o), NonRoot(w2).
  b.AddRule(&out.tgds, {Atom(node, {x, y, z, o}), Atom(nonmaxd, {y})},
            {Atom(node, {y, w, z, o}), Atom(nonroot, {w}),
             Atom(node, {y, w2, z, o}), Atom(nonroot, {w2})});

  // Children inherit the stratum:
  for (std::uint32_t i = 1; i <= n; ++i) {
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(nonroot, {y}),
               Atom(s[i], {x, z})},
              {Atom(s[i], {y, z})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(nonroot, {y}),
               Atom(s[i], {x, o})},
              {Atom(s[i], {y, o})});
  }

  // Depth-counter digit classification (pivot / change / copy):
  {
    // Same anchoring as NonMaxDepth: the Did guard pins z = 0 and o = 1,
    // so only the genuine rightmost digit-id 1^m is classified here.
    std::vector<Term> ones(m, o);
    Atom did_ones(did, cat({x, y, z, o}, ones));
    b.AddRule(&out.tgds,
              {did_ones, Atom(depthp, cat(cat({y}, ones), {z}))},
              {Atom(dpivot, cat({y}, ones))});
    b.AddRule(&out.tgds,
              {did_ones, Atom(depthp, cat(cat({y}, ones), {o}))},
              {Atom(dchange, cat({y}, ones))});
  }
  {
    Atom succ_atom(succ, cat(cat(cat({x, y, z, o}, ws), ws2), {}));
    b.AddRule(&out.tgds,
              {succ_atom, Atom(dchange, cat({y}, ws2)),
               Atom(depthp, cat(cat({y}, ws), {z}))},
              {Atom(dpivot, cat({y}, ws))});
    b.AddRule(&out.tgds,
              {succ_atom, Atom(dchange, cat({y}, ws2)),
               Atom(depthp, cat(cat({y}, ws), {o}))},
              {Atom(dchange, cat({y}, ws))});
    b.AddRule(&out.tgds, {succ_atom, Atom(dpivot, cat({y}, ws2))},
              {Atom(dcopy, cat({y}, ws))});
    b.AddRule(&out.tgds, {succ_atom, Atom(dcopy, cat({y}, ws2))},
              {Atom(dcopy, cat({y}, ws))});
  }

  // Child depth = parent depth + 1:
  {
    Atom did_atom(did, cat({x, y, z, o}, ws));
    b.AddRule(&out.tgds,
              {did_atom, Atom(nonroot, {y}), Atom(dchange, cat({x}, ws))},
              {Atom(depthp, cat(cat({y}, ws), {z}))});
    b.AddRule(&out.tgds,
              {did_atom, Atom(nonroot, {y}), Atom(dpivot, cat({x}, ws))},
              {Atom(depthp, cat(cat({y}, ws), {o}))});
    b.AddRule(&out.tgds,
              {did_atom, Atom(nonroot, {y}), Atom(dcopy, cat({x}, ws)),
               Atom(depthp, cat(cat({x}, ws), {z}))},
              {Atom(depthp, cat(cat({y}, ws), {z}))});
    b.AddRule(&out.tgds,
              {did_atom, Atom(nonroot, {y}), Atom(dcopy, cat({x}, ws)),
               Atom(depthp, cat(cat({x}, ws), {o}))},
              {Atom(depthp, cat(cat({y}, ws), {o}))});
  }

  // New strata: Node(x,y,z,o), NonMaxStratum(y) →
  //   ∃w Node(y,w,z,o), NewRoot(w);     NewRoot(x) → Root(x).
  b.AddRule(&out.tgds, {Atom(node, {x, y, z, o}), Atom(nonmaxs, {y})},
            {Atom(node, {y, w, z, o}), Atom(newroot, {w})});
  b.AddRule(&out.tgds, {Atom(newroot, {x})}, {Atom(root, {x})});

  // Stratum-counter digit classification:
  b.AddRule(&out.tgds, {Atom(node, {x, y, z, o}), Atom(s[n], {y, z})},
            {Atom(spivot[n], {y})});
  b.AddRule(&out.tgds, {Atom(node, {x, y, z, o}), Atom(s[n], {y, o})},
            {Atom(schange[n], {y})});
  for (std::uint32_t i = 2; i <= n; ++i) {
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(schange[i], {y}),
               Atom(s[i - 1], {y, z})},
              {Atom(spivot[i - 1], {y})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(schange[i], {y}),
               Atom(s[i - 1], {y, o})},
              {Atom(schange[i - 1], {y})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(spivot[i], {y})},
              {Atom(scopy[i - 1], {y})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(scopy[i], {y})},
              {Atom(scopy[i - 1], {y})});
  }

  // New roots carry stratum + 1 (note: the paper writes i ∈ {2,...,n},
  // which would leave S_1 of a new root undefined; we use i ∈ [n]).
  for (std::uint32_t i = 1; i <= n; ++i) {
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(newroot, {y}),
               Atom(schange[i], {x})},
              {Atom(s[i], {y, z})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(newroot, {y}),
               Atom(spivot[i], {x})},
              {Atom(s[i], {y, o})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(newroot, {y}),
               Atom(scopy[i], {x}), Atom(s[i], {x, z})},
              {Atom(s[i], {y, z})});
    b.AddRule(&out.tgds,
              {Atom(node, {x, y, z, o}), Atom(newroot, {y}),
               Atom(scopy[i], {x}), Atom(s[i], {x, o})},
              {Atom(s[i], {y, o})});
  }
  return out;
}

double GuardedLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                              std::uint32_t m) {
  return static_cast<double>(ell) *
         std::exp2(std::exp2(static_cast<double>(n)) *
                   (std::exp2(std::exp2(static_cast<double>(m))) - 1));
}

}  // namespace workload
}  // namespace nuchase
