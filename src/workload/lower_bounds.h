#ifndef NUCHASE_WORKLOAD_LOWER_BOUNDS_H_
#define NUCHASE_WORKLOAD_LOWER_BOUNDS_H_

#include <cstdint>
#include <string>

#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"

namespace nuchase {
namespace workload {

/// A generated (D, Σ) pair.
struct Workload {
  std::string name;
  tgd::TgdSet tgds;
  core::Database database;
};

/// Theorem 6.5's family: Σ_{n,m} ∈ SL ∩ CT_{D_ℓ} with
/// |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · m^{n·m}. `n` counts the R_i levels and `m`
/// is the arity. Generators assume a fresh SymbolTable per workload (the
/// generated predicate names are parameterized by n, m to avoid arity
/// clashes regardless).
Workload MakeSlLowerBound(core::SymbolTable* symbols, std::uint64_t ell,
                          std::uint32_t n, std::uint32_t m);

/// ℓ · m^{n·m}.
double SlLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                         std::uint32_t m);

/// Theorem 7.6's family: Σ_{n,m} ∈ L ∩ CT_{D_ℓ} with
/// |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^{n·(2^m − 1)}; arity m+3.
Workload MakeLinearLowerBound(core::SymbolTable* symbols, std::uint64_t ell,
                              std::uint32_t n, std::uint32_t m);

/// ℓ · 2^{n·(2^m−1)}.
double LinearLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                             std::uint32_t m);

/// Theorem 8.4's family: Σ_{n,m} ∈ G ∩ CT_{D_ℓ} with
/// |chase(D_ℓ, Σ_{n,m})| ≥ ℓ · 2^{2^n · (2^{2^m} − 1)} (strata of full
/// binary trees driven by an exponential stratum counter and a
/// double-exponential depth counter).
Workload MakeGuardedLowerBound(core::SymbolTable* symbols,
                               std::uint64_t ell, std::uint32_t n,
                               std::uint32_t m);

/// ℓ · 2^{2^n·(2^{2^m}−1)}.
double GuardedLowerBoundValue(std::uint64_t ell, std::uint32_t n,
                              std::uint32_t m);

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_LOWER_BOUNDS_H_
