#include "workload/turing.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "tgd/parser.h"

namespace nuchase {
namespace workload {

std::vector<std::string> TuringMachine::States() const {
  std::set<std::string> states{initial_state};
  for (const Rule& r : rules) {
    states.insert(r.state);
    states.insert(r.next_state);
  }
  return {states.begin(), states.end()};
}

std::vector<char> TuringMachine::Symbols() const {
  std::set<char> symbols{kBlank};
  for (const Rule& r : rules) {
    symbols.insert(r.read);
    symbols.insert(r.write);
  }
  symbols.erase(kBegin);
  symbols.erase(kEnd);
  return {symbols.begin(), symbols.end()};
}

std::optional<std::uint64_t> SimulateTm(const TuringMachine& tm,
                                        std::uint64_t max_steps) {
  // Tape: begin marker, one blank, end marker; head on the blank.
  std::vector<char> tape{TuringMachine::kBegin, TuringMachine::kBlank,
                         TuringMachine::kEnd};
  std::size_t head = 1;
  std::string state = tm.initial_state;

  for (std::uint64_t step = 0; step < max_steps; ++step) {
    const TuringMachine::Rule* rule = nullptr;
    for (const TuringMachine::Rule& r : tm.rules) {
      if (r.state == state && r.read == tape[head]) {
        rule = &r;
        break;
      }
    }
    if (rule == nullptr) return step;  // halted
    tape[head] = rule->write;
    state = rule->next_state;
    switch (rule->move) {
      case TuringMachine::Move::kLeft:
        assert(head > 1 && "machine must be well-behaved (Appendix A)");
        --head;
        break;
      case TuringMachine::Move::kStay:
        break;
      case TuringMachine::Move::kRight:
        ++head;
        if (tape[head] == TuringMachine::kEnd) {
          tape.insert(tape.begin() + static_cast<std::ptrdiff_t>(head),
                      TuringMachine::kBlank);
        }
        break;
    }
  }
  return std::nullopt;
}

namespace {

std::string StateConst(const std::string& state) { return "st_" + state; }

std::string SymConst(char symbol) {
  switch (symbol) {
    case TuringMachine::kBegin:
      return "sym_begin";
    case TuringMachine::kEnd:
      return "sym_end";
    case TuringMachine::kBlank:
      return "sym_blank";
    default:
      return std::string("sym_") + symbol;
  }
}

const char* MoveConst(TuringMachine::Move move) {
  switch (move) {
    case TuringMachine::Move::kLeft:
      return "dir_left";
    case TuringMachine::Move::kStay:
      return "dir_stay";
    case TuringMachine::Move::kRight:
      return "dir_right";
  }
  return "?";
}

}  // namespace

core::Database MakeTuringDatabase(core::SymbolTable* symbols,
                                  const TuringMachine& tm) {
  core::Database db;
  auto add = [&](const std::string& pred,
                 const std::vector<std::string>& args) {
    util::Status st = db.AddFact(symbols, pred, args);
    assert(st.ok());
    (void)st;
  };

  // Transition table.
  for (const TuringMachine::Rule& r : tm.rules) {
    add("Trans", {StateConst(r.state), SymConst(r.read),
                  StateConst(r.next_state), SymConst(r.write),
                  MoveConst(r.move)});
  }
  // Initial configuration on the empty input:
  //   Tape(c0,⊲,c1), Tape(c1,⊔,c2), Head(c1,q0,c2), Tape(c2,⊳,c3).
  add("Tape", {"c0", SymConst(TuringMachine::kBegin), "c1"});
  add("Tape", {"c1", SymConst(TuringMachine::kBlank), "c2"});
  add("Head", {"c1", StateConst(tm.initial_state), "c2"});
  add("Tape", {"c2", SymConst(TuringMachine::kEnd), "c3"});
  // Helper facts giving Σ★ access to the special constants.
  add("LDir", {MoveConst(TuringMachine::Move::kLeft)});
  add("SDir", {MoveConst(TuringMachine::Move::kStay)});
  add("RDir", {MoveConst(TuringMachine::Move::kRight)});
  add("Blank", {SymConst(TuringMachine::kBlank)});
  add("End", {SymConst(TuringMachine::kEnd)});
  for (char sym : tm.Symbols()) {
    add("NormSymb", {SymConst(sym)});
  }
  return db;
}

tgd::TgdSet MakeTuringTgds(core::SymbolTable* symbols) {
  // The fixed Σ★ of Appendix A, verbatim. Lv/Rv are the "vertical" edge
  // predicates (L and R in the paper).
  static const char kProgram[] = R"(
% Right move, head not at the end of the tape.
Trans(x1, x2, x3, x4, x5), RDir(x5), NormSymb(w),
  Head(x, x1, y), Tape(x, x2, y), Tape(y, w, z) ->
  Lv(x, xp), Rv(y, yp), Rv(z, zp),
  Tape(xp, x4, yp), Head(yp, x3, zp), Tape(yp, w, zp).

% Right move onto the end marker: extend the tape with a blank.
Trans(x1, x2, x3, x4, x5), RDir(x5), Blank(u), End(w),
  Head(x, x1, y), Tape(x, x2, y), Tape(y, w, z) ->
  Lv(x, xp), Rv(y, yp), Rv(z, zp),
  Tape(xp, x4, yp), Head(yp, x3, zp), Tape(yp, u, zp), Tape(zp, w, wp).

% Left move (the machine never reads beyond the first cell).
Trans(x1, x2, x3, x4, x5), LDir(x5),
  Tape(x, w, y), Head(y, x1, z), Tape(y, x2, z) ->
  Rv(x, xp), Rv(y, yp), Lv(z, zp),
  Head(xp, x3, yp), Tape(xp, w, yp), Tape(yp, x4, zp).

% Stay.
Trans(x1, x2, x3, x4, x5), SDir(x5),
  Head(x, x1, y), Tape(x, x2, y) ->
  Lv(x, xp), Rv(y, yp),
  Head(xp, x3, yp), Tape(xp, x4, yp).

% Copy the untouched cells to the left of the head.
Tape(x, z, y), Lv(y, yp) -> Lv(x, xp), Tape(xp, z, yp).

% Copy the untouched cells to the right of the head.
Tape(x, z, y), Rv(x, xp) -> Tape(xp, z, yp), Rv(y, yp).
)";
  auto tgds = tgd::ParseTgdSet(symbols, kProgram);
  assert(tgds.ok());
  return std::move(*tgds);
}

Workload MakeTuringWorkload(core::SymbolTable* symbols,
                            const TuringMachine& tm,
                            const std::string& name) {
  Workload out;
  out.name = name;
  out.tgds = MakeTuringTgds(symbols);
  out.database = MakeTuringDatabase(symbols, tm);
  return out;
}

TuringMachine MakeHaltingTm(std::uint32_t k) {
  TuringMachine tm;
  for (std::uint32_t i = 0; i < k; ++i) {
    tm.rules.push_back({"q" + std::to_string(i), TuringMachine::kBlank,
                        "q" + std::to_string(i + 1), '1',
                        TuringMachine::Move::kRight});
  }
  // No rule for ("q<k>", blank): the machine halts.
  return tm;
}

TuringMachine MakeLoopingTm() {
  TuringMachine tm;
  tm.rules.push_back({"q0", TuringMachine::kBlank, "q0", '1',
                      TuringMachine::Move::kRight});
  tm.rules.push_back({"q0", '1', "q0", '1', TuringMachine::Move::kRight});
  return tm;
}

TuringMachine MakeSpinningTm() {
  TuringMachine tm;
  tm.rules.push_back({"q0", TuringMachine::kBlank, "q0",
                      TuringMachine::kBlank, TuringMachine::Move::kStay});
  return tm;
}

TuringMachine MakeZigZagTm() {
  TuringMachine tm;
  tm.rules.push_back({"q0", TuringMachine::kBlank, "q1", '1',
                      TuringMachine::Move::kRight});
  tm.rules.push_back({"q1", TuringMachine::kBlank, "q2", '2',
                      TuringMachine::Move::kLeft});
  tm.rules.push_back({"q2", '1', "q3", '1', TuringMachine::Move::kStay});
  // No rule for ("q3", '1'): halt.
  return tm;
}

}  // namespace workload
}  // namespace nuchase
