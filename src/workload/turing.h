#ifndef NUCHASE_WORKLOAD_TURING_H_
#define NUCHASE_WORKLOAD_TURING_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/symbol_table.h"
#include "tgd/tgd.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {

/// A deterministic Turing machine with a partial transition function
/// (Appendix A). The machine halts when no transition is defined for the
/// current (state, symbol). Tape symbols are single-character strings;
/// the begin marker '>' , end marker '<' and blank '_' are implicit.
struct TuringMachine {
  enum class Move { kLeft, kStay, kRight };

  struct Rule {
    std::string state;
    char read;
    std::string next_state;
    char write;
    Move move;
  };

  std::string initial_state = "q0";
  std::vector<Rule> rules;
  /// All states mentioned (computed on demand by helpers).
  std::vector<std::string> States() const;
  /// All non-marker tape symbols mentioned (always includes '_').
  std::vector<char> Symbols() const;

  static constexpr char kBegin = '>';
  static constexpr char kEnd = '<';
  static constexpr char kBlank = '_';
};

/// Directly simulates the machine on the empty input, mirroring the
/// Appendix A encoding's conventions (the tape is extended with a blank
/// when the head moves onto the end marker). Returns the number of steps
/// to halt, or nullopt if the machine is still running after max_steps.
std::optional<std::uint64_t> SimulateTm(const TuringMachine& tm,
                                        std::uint64_t max_steps);

/// D_M: the database of Appendix A storing the transition table, the
/// initial configuration on the empty input, and the direction/symbol
/// helper facts.
core::Database MakeTuringDatabase(core::SymbolTable* symbols,
                                  const TuringMachine& tm);

/// The fixed, machine-independent set Σ★ of Appendix A (constant-free
/// TGDs simulating one configuration row per step; not guarded). The
/// chase of D_M w.r.t. Σ★ is finite iff M halts on the empty input.
tgd::TgdSet MakeTuringTgds(core::SymbolTable* symbols);

/// Convenience: D_M together with Σ★.
Workload MakeTuringWorkload(core::SymbolTable* symbols,
                            const TuringMachine& tm,
                            const std::string& name);

/// A machine that writes k marks, moving right, then halts (k+1 states;
/// halts after exactly k steps plus the final undefined lookup).
TuringMachine MakeHaltingTm(std::uint32_t k);

/// A machine that walks right forever (never halts).
TuringMachine MakeLoopingTm();

/// A machine that spins in place forever (never halts, constant tape).
TuringMachine MakeSpinningTm();

/// A machine that zig-zags: writes a mark, moves right onto a blank,
/// moves back left, and halts after revisiting; exercises the left-move
/// and copy TGDs.
TuringMachine MakeZigZagTm();

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_TURING_H_
