#include "workload/depth_family.h"

#include <cassert>

#include "tgd/parser.h"

namespace nuchase {
namespace workload {

namespace {

/// Parses a fixed program; aborts on parse errors (inputs are literals).
Workload FromProgram(core::SymbolTable* symbols, const std::string& name,
                     const std::string& text) {
  auto program = tgd::ParseProgram(symbols, text);
  assert(program.ok());
  Workload out;
  out.name = name;
  out.tgds = std::move(program->tgds);
  out.database = std::move(program->database);
  return out;
}

}  // namespace

Workload MakeDepthFamily(core::SymbolTable* symbols, std::uint32_t n) {
  assert(n >= 1);
  Workload out = FromProgram(symbols, "depth-family",
                             "Rd(x, y), Pd(x, z, v) -> Pd(y, w, z).\n");
  out.name = "depth-family(n=" + std::to_string(n) + ")";
  util::Status st =
      out.database.AddFact(symbols, "Pd", {"a1", "b", "b"});
  assert(st.ok());
  for (std::uint32_t i = 1; i + 1 <= n; ++i) {
    st = out.database.AddFact(
        symbols, "Rd",
        {"a" + std::to_string(i), "a" + std::to_string(i + 1)});
    assert(st.ok());
  }
  (void)st;
  return out;
}

Workload MakeInfinitePath(core::SymbolTable* symbols) {
  return FromProgram(symbols, "infinite-path",
                     "Rp(a, b).\n"
                     "Rp(x, y) -> Rp(y, z).\n");
}

Workload MakeFairnessExample(core::SymbolTable* symbols) {
  return FromProgram(symbols, "fairness-example",
                     "Rf(a, b).\n"
                     "Rf(x, y) -> Rf(y, z).\n"
                     "Rf(x, y) -> Pf(x, y).\n");
}

Workload MakeExample71(core::SymbolTable* symbols) {
  return FromProgram(symbols, "example-7.1",
                     "Re(a, b).\n"
                     "Re(x, x) -> Re(z, x).\n");
}

Workload MakeWideDepthFamily(core::SymbolTable* symbols,
                             std::uint32_t layers, std::uint32_t width,
                             std::uint32_t payloads,
                             std::uint32_t noise) {
  assert(layers >= 1 && width >= 1 && payloads >= 1 && noise >= 1);
  Workload out =
      FromProgram(symbols, "depth-family-wide",
                  "Rd(x, y), Pd(x, z, v), Sd(x, u) -> Pd(y, w, z).\n");
  out.name = "depth-family-wide(layers=" + std::to_string(layers) +
             ",width=" + std::to_string(width) +
             ",payloads=" + std::to_string(payloads) +
             ",noise=" + std::to_string(noise) + ")";
  auto node = [](std::uint32_t chain, std::uint32_t layer) {
    return "c" + std::to_string(chain) + "_" + std::to_string(layer);
  };
  util::Status st;
  for (std::uint32_t a = 0; a < width; ++a) {
    for (std::uint32_t j = 0; j < payloads; ++j) {
      std::string payload = "s" + std::to_string(j);
      st = out.database.AddFact(symbols, "Pd",
                                {node(a, 1), payload, payload});
      assert(st.ok());
    }
    for (std::uint32_t layer = 1; layer <= layers; ++layer) {
      if (layer < layers) {
        st = out.database.AddFact(symbols, "Rd",
                                  {node(a, layer), node(a, layer + 1)});
        assert(st.ok());
      }
      for (std::uint32_t m = 0; m < noise; ++m) {
        st = out.database.AddFact(symbols, "Sd",
                                  {node(a, layer),
                                   "u" + std::to_string(m)});
        assert(st.ok());
      }
    }
  }
  (void)st;
  return out;
}

Workload MakeDepthFamilyInfinite(core::SymbolTable* symbols) {
  Workload out = FromProgram(symbols, "depth-family-infinite",
                             "Rd(x, y), Pd(x, z, v) -> Pd(y, w, z).\n");
  util::Status st = out.database.AddFact(symbols, "Pd", {"a", "a", "a"});
  assert(st.ok());
  st = out.database.AddFact(symbols, "Rd", {"a", "a"});
  assert(st.ok());
  (void)st;
  return out;
}

}  // namespace workload
}  // namespace nuchase
