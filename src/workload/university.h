#ifndef NUCHASE_WORKLOAD_UNIVERSITY_H_
#define NUCHASE_WORKLOAD_UNIVERSITY_H_

#include <cstdint>

#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {

/// Parameters of the synthetic university workload (LUBM-flavoured; the
/// kind of EL-style ontology + relational data the paper's introduction
/// motivates for OBDA).
struct UniversityOptions {
  std::uint32_t departments = 4;
  std::uint32_t professors_per_department = 5;
  std::uint32_t students_per_department = 40;
  std::uint32_t courses_per_department = 8;
  /// Seed for the deterministic enrollment/teaching assignment.
  std::uint32_t seed = 1;
  /// Include the rule making every advisor chain extend forever
  /// (UnderReview(x) → ∃y Advises(y, x), UnderReview(y)): with it, any
  /// database containing an UnderReview fact makes the chase infinite.
  bool include_review_rule = false;
  /// Number of UnderReview seed facts (only meaningful with the rule).
  std::uint32_t under_review = 0;
};

/// A guarded university ontology over predicates
///   Dept/1, Prof/2 (prof, dept), Student/2 (student, dept),
///   Course/2 (course, dept), Teaches/2, Enrolled/2 (student, course),
///   Advises/2, HasAdvisor/1, TaughtBy/2, Colleague/2, ...
/// with existential rules (every professor teaches some course, every
/// student has some advisor in their department, ...) that terminate on
/// every database — unless the optional review rule is enabled and fed.
Workload MakeUniversityWorkload(core::SymbolTable* symbols,
                                const UniversityOptions& options = {});

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_UNIVERSITY_H_
