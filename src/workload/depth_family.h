#ifndef NUCHASE_WORKLOAD_DEPTH_FAMILY_H_
#define NUCHASE_WORKLOAD_DEPTH_FAMILY_H_

#include <cstdint>

#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {

/// Proposition 4.5's family: Σ = { R(x,y), P(x,z,v) → ∃w P(y,w,z) } and
/// D_n = { P(a1,b,b), R(a1,a2), ..., R(a_{n−1},a_n) }, with |D_n| = n and
/// maxdepth(D_n, Σ) = n − 1. Demonstrates that, unlike the uniform case
/// (Theorem 4.4), no database-independent depth bound exists for
/// arbitrary TGDs. Note Σ is not guarded.
Workload MakeDepthFamily(core::SymbolTable* symbols, std::uint32_t n);

/// Section 3's canonical non-terminating pair: D = { R(a,b) },
/// Σ = { R(x,y) → ∃z R(y,z) }.
Workload MakeInfinitePath(core::SymbolTable* symbols);

/// Section 3's fairness example: Σ = { R(x,y) → ∃z R(y,z),
/// R(x,y) → P(x,y) } over D = { R(a,b) }; an unfair derivation that never
/// fires the second TGD does not satisfy Σ.
Workload MakeFairnessExample(core::SymbolTable* symbols);

/// Example 7.1: D = { R(a,b) }, Σ = { R(x,x) → ∃z R(z,x) }. The chase is
/// finite (no trigger at all) although Σ is not D-weakly-acyclic —
/// non-uniform weak-acyclicity is too coarse for non-simple linear TGDs.
Workload MakeExample71(core::SymbolTable* symbols);

/// Proposition 4.5's companion observation: the same Σ as
/// MakeDepthFamily over D = { P(a,a,a), R(a,a) } has an infinite chase
/// (so Σ ∉ CT).
Workload MakeDepthFamilyInfinite(core::SymbolTable* symbols);

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_DEPTH_FAMILY_H_
