#ifndef NUCHASE_WORKLOAD_DEPTH_FAMILY_H_
#define NUCHASE_WORKLOAD_DEPTH_FAMILY_H_

#include <cstdint>

#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {

/// Proposition 4.5's family: Σ = { R(x,y), P(x,z,v) → ∃w P(y,w,z) } and
/// D_n = { P(a1,b,b), R(a1,a2), ..., R(a_{n−1},a_n) }, with |D_n| = n and
/// maxdepth(D_n, Σ) = n − 1. Demonstrates that, unlike the uniform case
/// (Theorem 4.4), no database-independent depth bound exists for
/// arbitrary TGDs. Note Σ is not guarded.
Workload MakeDepthFamily(core::SymbolTable* symbols, std::uint32_t n);

/// Section 3's canonical non-terminating pair: D = { R(a,b) },
/// Σ = { R(x,y) → ∃z R(y,z) }.
Workload MakeInfinitePath(core::SymbolTable* symbols);

/// Section 3's fairness example: Σ = { R(x,y) → ∃z R(y,z),
/// R(x,y) → P(x,y) } over D = { R(a,b) }; an unfair derivation that never
/// fires the second TGD does not satisfy Σ.
Workload MakeFairnessExample(core::SymbolTable* symbols);

/// Example 7.1: D = { R(a,b) }, Σ = { R(x,x) → ∃z R(z,x) }. The chase is
/// finite (no trigger at all) although Σ is not D-weakly-acyclic —
/// non-uniform weak-acyclicity is too coarse for non-simple linear TGDs.
Workload MakeExample71(core::SymbolTable* symbols);

/// Proposition 4.5's companion observation: the same Σ as
/// MakeDepthFamily over D = { P(a,a,a), R(a,a) } has an infinite chase
/// (so Σ ∉ CT).
Workload MakeDepthFamilyInfinite(core::SymbolTable* symbols);

/// The wide depth family — the recursive workload the parallel trigger
/// engine scales on. Proposition 4.5's rule extended with a third,
/// frontier-free body atom, over `width` disjoint chains instead of one:
///
///   Σ = { R(x,y), P(x,z,v), S(x,u) → ∃w P(y,w,z) }
///   D  = { R(c_i^a, c_{i+1}^a)  | a < width, i < layers }   (chains)
///      ∪ { P(c_1^a, s_j, s_j)   | a < width, j < payloads } (seeds)
///      ∪ { S(c_i^a, u_m)        | a < width, i ≤ layers,
///                                 m < noise }               (noise)
///
/// Every chase round advances width·payloads payload streams one chain
/// layer: the round's delta holds width·payloads P-atoms, each seeding
/// a join that probes its node's `noise` S-atoms, and the `noise`
/// homomorphisms per trigger collapse to one firing (u is not in the
/// frontier). That gives the parallel engine exactly what it has to be
/// good at — wide rounds of independent delta seeds, per-seed join work
/// that dominates the sequential apply phase, and duplicate candidates
/// that the canonical merge must collapse — while rounds stay a
/// constant width (the chains are disjoint, so nothing compounds).
/// Null depth still grows by one per layer, as in the narrow family:
/// the propagated payload position carries the previous round's null.
/// The chase terminates with width·payloads·layers derived atoms after
/// `layers` rounds and width·payloads·noise·layers join probes of
/// S-work.
Workload MakeWideDepthFamily(core::SymbolTable* symbols,
                             std::uint32_t layers, std::uint32_t width,
                             std::uint32_t payloads,
                             std::uint32_t noise);

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_DEPTH_FAMILY_H_
