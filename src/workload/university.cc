#include "workload/university.h"

#include <cassert>
#include <string>
#include <vector>

#include "tgd/parser.h"

namespace nuchase {
namespace workload {

namespace {

/// xorshift32: deterministic, seed-stable across platforms.
std::uint32_t Next(std::uint32_t* state) {
  std::uint32_t x = *state;
  x ^= x << 13;
  x ^= x >> 17;
  x ^= x << 5;
  return *state = x;
}

}  // namespace

Workload MakeUniversityWorkload(core::SymbolTable* symbols,
                                const UniversityOptions& options) {
  Workload out;
  out.name = "university(d=" + std::to_string(options.departments) +
             ",p=" + std::to_string(options.professors_per_department) +
             ",s=" + std::to_string(options.students_per_department) + ")";

  // The ontology. All rules are guarded; the existential ones model the
  // usual EL-style axioms ("every professor teaches something", "every
  // student has an advisor who is a professor of the same department").
  std::string rules =
      // Registration records are the raw relational data; the guarded
      // multi-atom rule unpacks them into the ontology's binary roles.
      "Reg(s, c, d), Dept(d) -> Enrolled(s, c), Student(s, d).\n"
      // Domain closure.
      "Prof(p, d) -> Dept(d).\n"
      "Student(s, d) -> Dept(d).\n"
      "Course(c, d) -> Dept(d).\n"
      // Every professor teaches some course of their department.
      "Prof(p, d) -> Teaches(p, c), Course(c, d).\n"
      // Teaching implies the inverse role.
      "Teaches(p, c) -> TaughtBy(c, p).\n"
      // Every student has an advisor; the advisor is a professor of the
      // same department.
      "Student(s, d) -> Advises(a, s), Prof(a, d).\n"
      "Advises(a, s) -> HasAdvisor(s).\n"
      // An enrolled student's course is taught by someone.
      "Enrolled(s, c) -> TaughtBy(c, p).\n";
  if (options.include_review_rule) {
    rules += "UnderReview(x) -> Advises(y, x), UnderReview(y).\n";
  }
  auto tgds = tgd::ParseTgdSet(symbols, rules);
  assert(tgds.ok());
  out.tgds = std::move(*tgds);

  // The data.
  std::uint32_t rng = options.seed == 0 ? 1 : options.seed;
  for (std::uint32_t d = 0; d < options.departments; ++d) {
    std::string dept = "dept" + std::to_string(d);
    (void)out.database.AddFact(symbols, "Dept", {dept});
    for (std::uint32_t p = 0; p < options.professors_per_department; ++p) {
      (void)out.database.AddFact(
          symbols, "Prof",
          {"prof" + std::to_string(d) + "_" + std::to_string(p), dept});
    }
    for (std::uint32_t c = 0; c < options.courses_per_department; ++c) {
      (void)out.database.AddFact(
          symbols, "Course",
          {"course" + std::to_string(d) + "_" + std::to_string(c), dept});
    }
    for (std::uint32_t s = 0; s < options.students_per_department; ++s) {
      std::string student =
          "stud" + std::to_string(d) + "_" + std::to_string(s);
      // 1-3 registration records per student; Student/Enrolled atoms are
      // derived by the unpacking rule, not stored.
      std::uint32_t registrations = 1 + Next(&rng) % 3;
      for (std::uint32_t e = 0; e < registrations; ++e) {
        std::uint32_t c = Next(&rng) % options.courses_per_department;
        (void)out.database.AddFact(
            symbols, "Reg",
            {student,
             "course" + std::to_string(d) + "_" + std::to_string(c),
             dept});
      }
    }
  }
  for (std::uint32_t r = 0; r < options.under_review; ++r) {
    (void)out.database.AddFact(symbols, "UnderReview",
                               {"thesis" + std::to_string(r)});
  }
  return out;
}

}  // namespace workload
}  // namespace nuchase
