#include "workload/random_tgds.h"

#include <cassert>
#include <random>

namespace nuchase {
namespace workload {

using core::Atom;
using core::Term;

Workload MakeRandomWorkload(core::SymbolTable* symbols,
                            const RandomTgdOptions& options) {
  std::mt19937 rng(options.seed);
  auto pick = [&](std::uint32_t bound) {  // uniform in [0, bound)
    return static_cast<std::uint32_t>(rng() % bound);
  };

  Workload out;
  out.name = "random(seed=" + std::to_string(options.seed) + ",class=" +
             tgd::TgdClassName(options.target) + ")";
  std::string tag = "rnd" + std::to_string(options.name_tag) + "_";

  // Schema.
  std::vector<core::PredicateId> preds;
  std::vector<std::uint32_t> arities;
  for (std::uint32_t p = 0; p < options.num_predicates; ++p) {
    std::uint32_t arity = 1 + pick(options.max_arity);
    auto pred =
        symbols->InternPredicate(tag + "P" + std::to_string(p), arity);
    assert(pred.ok());
    preds.push_back(*pred);
    arities.push_back(arity);
  }

  // Rules.
  for (std::uint32_t t = 0; t < options.num_tgds; ++t) {
    std::string rtag = tag + "r" + std::to_string(t) + "_";
    auto var = [&](std::uint32_t i) {
      return symbols->InternVariable(rtag + "v" + std::to_string(i));
    };

    // Body: one atom for SL/L; guard plus side atoms for G.
    std::vector<Atom> body;
    std::vector<Term> body_vars;
    std::uint32_t guard_pick = pick(static_cast<std::uint32_t>(
        preds.size()));
    std::uint32_t guard_arity = arities[guard_pick];
    std::vector<Term> guard_args;
    for (std::uint32_t i = 0; i < guard_arity; ++i) {
      if (options.target == tgd::TgdClass::kSimpleLinear ||
          body_vars.empty() || pick(100) < 70) {
        Term v = var(static_cast<std::uint32_t>(body_vars.size()));
        body_vars.push_back(v);
        guard_args.push_back(v);
      } else {
        // Repeat an existing body variable (L and G only).
        guard_args.push_back(body_vars[pick(
            static_cast<std::uint32_t>(body_vars.size()))]);
      }
    }
    body.emplace_back(preds[guard_pick], guard_args);

    if (options.target == tgd::TgdClass::kGuarded &&
        options.max_side_atoms > 0) {
      std::uint32_t side_count = pick(options.max_side_atoms + 1);
      for (std::uint32_t s = 0; s < side_count; ++s) {
        std::uint32_t p = pick(static_cast<std::uint32_t>(preds.size()));
        std::vector<Term> args;
        for (std::uint32_t i = 0; i < arities[p]; ++i) {
          args.push_back(body_vars[pick(
              static_cast<std::uint32_t>(body_vars.size()))]);
        }
        body.emplace_back(preds[p], std::move(args));
      }
    }

    // Head: 1..max_head_atoms atoms over frontier + existential vars.
    std::uint32_t head_count = 1 + pick(options.max_head_atoms);
    std::vector<Term> existentials;
    std::vector<Atom> head;
    for (std::uint32_t a = 0; a < head_count; ++a) {
      std::uint32_t p = pick(static_cast<std::uint32_t>(preds.size()));
      std::vector<Term> args;
      for (std::uint32_t i = 0; i < arities[p]; ++i) {
        if (pick(100) < options.existential_percent) {
          if (existentials.empty() || pick(100) < 60) {
            Term z = symbols->InternVariable(
                rtag + "z" + std::to_string(existentials.size()));
            existentials.push_back(z);
            args.push_back(z);
          } else {
            args.push_back(existentials[pick(
                static_cast<std::uint32_t>(existentials.size()))]);
          }
        } else {
          args.push_back(body_vars[pick(
              static_cast<std::uint32_t>(body_vars.size()))]);
        }
      }
      head.emplace_back(preds[p], std::move(args));
    }

    auto rule = tgd::Tgd::Create(std::move(body), std::move(head));
    assert(rule.ok());
    out.tgds.Add(std::move(*rule));
  }

  // Database.
  for (std::uint32_t f = 0; f < options.num_facts; ++f) {
    std::uint32_t p = pick(static_cast<std::uint32_t>(preds.size()));
    std::vector<std::string> args;
    for (std::uint32_t i = 0; i < arities[p]; ++i) {
      args.push_back(tag + "c" + std::to_string(pick(
                                      options.num_constants)));
    }
    util::Status st = out.database.AddFact(
        symbols, symbols->predicate_name(preds[p]), args);
    assert(st.ok());
    (void)st;
  }
  return out;
}

}  // namespace workload
}  // namespace nuchase
