#ifndef NUCHASE_WORKLOAD_RANDOM_TGDS_H_
#define NUCHASE_WORKLOAD_RANDOM_TGDS_H_

#include <cstdint>

#include "tgd/classify.h"
#include "workload/lower_bounds.h"

namespace nuchase {
namespace workload {

/// Parameters of the seeded random workload generator used by the
/// property tests to cross-validate the syntactic deciders against the
/// bounded-chase ground truth.
struct RandomTgdOptions {
  std::uint32_t seed = 1;
  /// Target class of the generated set (every rule belongs to it).
  tgd::TgdClass target = tgd::TgdClass::kSimpleLinear;
  std::uint32_t num_predicates = 4;
  std::uint32_t max_arity = 3;
  std::uint32_t num_tgds = 5;
  std::uint32_t max_head_atoms = 2;
  /// For guarded rules: maximum number of side atoms next to the guard.
  std::uint32_t max_side_atoms = 2;
  /// Probability (percent) that a head argument is existential.
  std::uint32_t existential_percent = 40;
  /// Number of facts / distinct constants in the companion database.
  std::uint32_t num_facts = 6;
  std::uint32_t num_constants = 4;
  /// Distinguishes predicate families when one SymbolTable hosts several
  /// generated workloads.
  std::uint32_t name_tag = 0;
};

/// Generates a random (D, Σ) in the requested class. Deterministic in the
/// seed.
Workload MakeRandomWorkload(core::SymbolTable* symbols,
                            const RandomTgdOptions& options);

}  // namespace workload
}  // namespace nuchase

#endif  // NUCHASE_WORKLOAD_RANDOM_TGDS_H_
